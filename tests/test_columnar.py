"""Equivalence of the columnar join with the reference evaluator.

The vectorized enumeration of :mod:`repro.query.columnar` must realize
exactly the witnesses of ``D |= q`` (Section 2) that the backtracking
evaluator realizes — as a *multiset of valuations*, not just as
collapsed tuple sets — and the witness structures and solver answers
built on top of it must be identical to the reference path's.
"""

import collections
import os
import random
from contextlib import contextmanager

import pytest
from hypothesis import given, strategies as st

from repro.query.columnar import (
    ColumnarDatabase,
    backend_counters,
    columnar_valuations,
    columnar_witness_incidence,
    columnar_witness_tuple_sets,
    join_backend,
    reset_backend_counters,
    try_witness_tuple_sets,
)
from repro.query.evaluation import witness_tuple_sets, witnesses
from repro.query.zoo import ALL_QUERIES
from repro.witness import clear_witness_cache
from repro.witness.structure import WitnessStructure
from repro.resilience.solver import solve
from repro.workloads import (
    random_database_for_query,
    random_sjfree_cq,
    random_ssj_binary_cq,
)


@contextmanager
def _env(**overrides):
    old = {key: os.environ.get(key) for key in overrides}
    try:
        for key, value in overrides.items():
            if value is None:
                os.environ.pop(key, None)
            else:
                os.environ[key] = value
        yield
    finally:
        for key, value in old.items():
            if value is None:
                os.environ.pop(key, None)
            else:
                os.environ[key] = value


def _with_duplicate_atom(query, rng):
    """A copy of ``query`` whose body literally repeats one atom.

    White-box: the ``ConjunctiveQuery`` constructor dedupes duplicate
    subgoals (conjunction is idempotent), so the repeated-atom body is
    installed directly.  The join layers must still handle it — a body
    with literal duplicates is exactly the shape that exposed the
    signature-collision bug in ``_enumerate_fact_matrix`` (two atoms
    sharing one output column, another left uninitialized).
    """
    from repro.query.cq import ConjunctiveQuery

    atoms = list(query.atoms)
    dup = atoms[rng.randrange(len(atoms))]
    atoms.insert(rng.randrange(len(atoms) + 1), dup)
    clone = ConjunctiveQuery(query.atoms, name=query.name)
    clone.atoms = tuple(atoms)
    return clone


def _random_instance(seed: int, allow_duplicates: bool = True):
    rng = random.Random(seed)
    if rng.random() < 0.5:
        query = random_ssj_binary_cq(rng=rng)
    else:
        query = random_sjfree_cq(rng=rng)
    database = random_database_for_query(
        query,
        domain_size=rng.randint(2, 6),
        density=rng.uniform(0.1, 0.6),
        rng=rng,
    )
    if allow_duplicates and rng.random() < 0.25:
        query = _with_duplicate_atom(query, rng)
    return database, query


class TestEnumerationEquivalence:
    @given(st.integers(min_value=0, max_value=10**6))
    def test_valuation_multisets_match_reference(self, seed):
        """The vectorized join yields exactly the reference witness
        multiset (each valuation once, none missing, none invented)."""
        database, query = _random_instance(seed)
        reference = collections.Counter(
            frozenset(v.items()) for v in witnesses(database, query)
        )
        vectorized = columnar_valuations(database, query)
        assert vectorized is not None
        assert reference == collections.Counter(
            frozenset(v.items()) for v in vectorized
        )

    @given(st.integers(min_value=0, max_value=10**6))
    def test_witness_tuple_sets_match_reference(self, seed):
        """Same deduplicated endogenous witness sets, both flag modes."""
        database, query = _random_instance(seed)
        for endo in (True, False):
            reference = witness_tuple_sets(
                database, query, endogenous_only=endo
            )
            vectorized = columnar_witness_tuple_sets(
                database, query, endogenous_only=endo
            )
            assert vectorized is not None
            assert len(vectorized) == len(reference)
            assert set(vectorized) == set(reference)

    @given(st.integers(min_value=0, max_value=10**6))
    def test_incidence_matches_structure_ids(self, seed):
        """The direct incidence (universe + local-id matrix) encodes the
        same sets under the same sorted-universe id assignment."""
        database, query = _random_instance(seed)
        reference = witness_tuple_sets(database, query)
        if any(not s for s in reference):
            return  # unbreakable; build() raises before ids exist
        incidence = columnar_witness_incidence(database, query)
        assert incidence is not None
        universe, matrix = incidence
        assert list(universe) == sorted(
            {t for s in reference for t in s}, key=lambda t: t.sort_key()
        )
        pad = len(universe)
        decoded = {
            frozenset(universe[t] for t in row if t != pad)
            for row in matrix.tolist()
        }
        assert decoded == set(reference)
        assert matrix.shape[0] == len(reference)

    def test_zoo_queries_supported(self):
        """No zoo query falls back: every shape the paper uses is
        vectorizable."""
        for name in sorted(ALL_QUERIES):
            query = ALL_QUERIES[name]
            database = random_database_for_query(
                query, domain_size=5, density=0.4, seed=7
            )
            reference = witness_tuple_sets(database, query)
            vectorized = columnar_witness_tuple_sets(database, query)
            assert vectorized is not None, name
            assert set(vectorized) == set(reference), name
            assert len(vectorized) == len(reference), name


class TestDuplicateAtoms:
    """Regression for the output-column collision on duplicate atoms.

    ``_enumerate_fact_matrix`` used to map join-ordered columns back to
    body positions by ``atom.signature()`` alone — duplicate atoms
    collapsed onto one dict key, writing one ``np.empty`` column twice
    and leaving another as uninitialized garbage tuple ids.
    """

    def _chain_with_duplicate(self):
        from repro.query.cq import Atom, ConjunctiveQuery

        r = Atom("R", ("x", "y"))
        s = Atom("S", ("y", "z"))
        query = ConjunctiveQuery((r, s), name="dup_chain")
        query.atoms = (r, r, s)  # white-box: bypass idempotent dedup
        return query

    def test_duplicate_atom_columns_are_each_written(self):
        from repro.db.database import Database

        query = self._chain_with_duplicate()
        database = Database()
        for u, v in [(1, 2), (2, 3), (3, 4), (4, 1)]:
            database.add("R", u, v)
        for u, v in [(2, 5), (3, 6), (1, 7)]:
            database.add("S", u, v)
        reference = witness_tuple_sets(database, query)
        vectorized = columnar_witness_tuple_sets(database, query)
        assert vectorized is not None
        assert set(vectorized) == set(reference)
        assert len(vectorized) == len(reference)

    def test_duplicate_atom_valuations_match_reference(self):
        query = self._chain_with_duplicate()
        database = random_database_for_query(
            query, domain_size=5, density=0.5, seed=11
        )
        reference = collections.Counter(
            frozenset(v.items()) for v in witnesses(database, query)
        )
        vectorized = columnar_valuations(database, query)
        assert vectorized is not None
        assert reference == collections.Counter(
            frozenset(v.items()) for v in vectorized
        )

    @given(st.integers(min_value=0, max_value=10**6))
    def test_random_duplicate_atom_queries_match_reference(self, seed):
        """Every random instance, with one atom force-duplicated."""
        rng = random.Random(seed ^ 0x5EED)
        database, query = _random_instance(seed, allow_duplicates=False)
        query = _with_duplicate_atom(query, rng)
        reference = witness_tuple_sets(database, query)
        vectorized = columnar_witness_tuple_sets(database, query)
        assert vectorized is not None
        assert set(vectorized) == set(reference)
        assert len(vectorized) == len(reference)


class TestStructureAndSolveEquivalence:
    @given(st.integers(min_value=0, max_value=10**6))
    def test_structures_identical_across_join_backends(self, seed):
        """Forced-columnar builds equal reference builds field by field:
        universe, ids, reduced sets, forced tuples, components, stats."""
        database, query = _random_instance(seed)
        built = {}
        for backend in ("reference", "columnar"):
            with _env(
                REPRO_JOIN_BACKEND=backend, REPRO_COLUMNAR_MIN_TUPLES="0"
            ):
                try:
                    built[backend] = WitnessStructure.build(database, query)
                except Exception as exc:  # UnbreakableQueryError etc.
                    built[backend] = type(exc)
        ref, col = built["reference"], built["columnar"]
        if isinstance(ref, type) or isinstance(col, type):
            assert ref == col
            return
        assert col.universe == ref.universe
        assert col.sets == ref.sets
        assert col.forced_ids == ref.forced_ids
        assert set(col.raw_sets) == set(ref.raw_sets)
        assert len(col.raw_sets) == len(ref.raw_sets)
        assert [(c.tuple_ids, c.sets) for c in col.components] == [
            (c.tuple_ids, c.sets) for c in ref.components
        ]
        for field in (
            "witnesses_raw",
            "witnesses_distinct",
            "witnesses_minimal",
            "witnesses_final",
            "tuples_raw",
            "tuples_final",
            "forced_tuples",
            "dominated_tuples",
            "components",
            "rounds",
        ):
            assert getattr(col.stats, field) == getattr(ref.stats, field), field

    @pytest.mark.parametrize("mode", ["exact", "approx", "anytime"])
    def test_solve_answers_identical_across_join_backends(self, mode):
        """End-to-end ``solve`` answers are identical whichever join
        enumerated the witnesses, in every mode."""
        for seed in range(8):
            database, query = _random_instance(seed)
            answers = {}
            for backend in ("reference", "columnar"):
                with _env(
                    REPRO_JOIN_BACKEND=backend,
                    REPRO_COLUMNAR_MIN_TUPLES="0",
                ):
                    clear_witness_cache()
                    try:
                        result = solve(database, query, mode=mode)
                    except Exception as exc:
                        answers[backend] = type(exc)
                        continue
                    if mode == "exact":
                        answers[backend] = (
                            result.value,
                            result.contingency_set,
                            result.method,
                        )
                    else:
                        answers[backend] = (
                            result.interval,
                            result.contingency_set,
                            result.method,
                        )
            clear_witness_cache()
            assert answers["reference"] == answers["columnar"], seed


class TestBackendDispatch:
    def test_join_backend_default_and_validation(self):
        with _env(REPRO_JOIN_BACKEND=None):
            assert join_backend() == "columnar"
        with _env(REPRO_JOIN_BACKEND="reference"):
            assert join_backend() == "reference"
        with _env(REPRO_JOIN_BACKEND="typo"):
            with pytest.raises(ValueError):
                join_backend()

    def test_small_databases_stay_on_reference_path(self):
        """Below the size threshold the dispatcher declines (and counts
        the decline as a reference run, not a fallback)."""
        query = ALL_QUERIES["q_chain"]
        database = random_database_for_query(
            query, domain_size=4, density=0.5, seed=0
        )
        reset_backend_counters()
        with _env(REPRO_JOIN_BACKEND=None, REPRO_COLUMNAR_MIN_TUPLES=None):
            assert try_witness_tuple_sets(database, query) is None
        counters = backend_counters()
        assert counters["reference"] == 1
        assert counters["fallback"] == 0
        assert counters["columnar"] == 0

    def test_forced_columnar_counts_a_columnar_run(self):
        query = ALL_QUERIES["q_chain"]
        database = random_database_for_query(
            query, domain_size=4, density=0.5, seed=0
        )
        reset_backend_counters()
        with _env(REPRO_JOIN_BACKEND=None, REPRO_COLUMNAR_MIN_TUPLES="0"):
            assert try_witness_tuple_sets(database, query) is not None
        assert backend_counters()["columnar"] == 1

    def test_disabled_backend_counts_reference(self):
        query = ALL_QUERIES["q_chain"]
        database = random_database_for_query(
            query, domain_size=4, density=0.5, seed=0
        )
        reset_backend_counters()
        with _env(REPRO_JOIN_BACKEND="reference", REPRO_COLUMNAR_MIN_TUPLES="0"):
            assert try_witness_tuple_sets(database, query) is None
        assert backend_counters()["reference"] == 1

    def test_arity_mismatch_falls_back(self):
        """A database relation narrower than the atom cannot be joined
        columnar; the dispatcher reports a fallback."""
        from repro.db.database import Database
        from repro.query.parser import parse_query

        query = parse_query("q() :- R(x,y)")
        database = Database()
        database.declare("R", 1)
        database.add("R", 1)
        reset_backend_counters()
        with _env(REPRO_JOIN_BACKEND=None, REPRO_COLUMNAR_MIN_TUPLES="0"):
            assert try_witness_tuple_sets(database, query) is None
        assert backend_counters()["fallback"] == 1

    def test_columnar_database_encoding_roundtrip(self):
        """Dictionary encoding is lossless: codes decode back to the
        original facts, ids are positions into the flat fact list."""
        query = ALL_QUERIES["q_chain"]
        database = random_database_for_query(
            query, domain_size=5, density=0.5, seed=3
        )
        cdb = ColumnarDatabase(database)
        assert len(cdb.facts) == len(database)
        for name, (codes, ids) in cdb.relations.items():
            for row, tid in zip(codes.tolist(), ids.tolist()):
                fact = cdb.facts[tid]
                assert fact.relation == name
                assert tuple(cdb.constants[c] for c in row) == fact.values
