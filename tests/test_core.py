"""Tests for the high-level API: analyzer and deletion propagation."""

import pytest

from repro.core import (
    ResilienceAnalyzer,
    ViewQuery,
    deletion_propagation,
    parse_view,
)
from repro.db import Database, DBTuple
from repro.query import parse_query
from repro.resilience.exact import resilience_exact
from repro.structure import Verdict


class TestAnalyzer:
    def test_report_on_chain(self):
        analyzer = ResilienceAnalyzer("R(x,y), R(y,z)")
        report = analyzer.report()
        assert report.verdict == Verdict.NPC
        assert report.pattern == "chain"
        assert report.triad is None
        assert report.pseudo_linear

    def test_report_on_triangle(self):
        analyzer = ResilienceAnalyzer("R(x,y), S(y,z), T(z,x)")
        report = analyzer.report()
        assert report.verdict == Verdict.NPC
        assert report.triad is not None
        assert report.linear_order is None

    def test_report_caches(self):
        analyzer = ResilienceAnalyzer("R(x,y), R(y,z)")
        assert analyzer.report() is analyzer.report()

    def test_domination_reported(self):
        analyzer = ResilienceAnalyzer("R(x,y), A(x), T(z,x), S(y,z)")
        report = analyzer.report()
        assert ("A", "R") in report.dominated
        assert ("A", "T") in report.dominated

    def test_explain_mentions_rule(self):
        text = ResilienceAnalyzer("A(x), R(x,y), R(z,y), C(z)").explain()
        assert "confluence" in text
        assert "P" in text

    def test_explain_mentions_triad(self):
        text = ResilienceAnalyzer("R(x,y), S(y,z), T(z,x)").explain()
        assert "triad" in text

    def test_solve_via_analyzer(self, chain_db):
        analyzer = ResilienceAnalyzer("R(x,y), R(y,z)")
        assert analyzer.solve(chain_db).value == 2

    def test_accepts_query_object(self):
        q = parse_query("R(x,y), R(y,x)")
        assert ResilienceAnalyzer(q).report().pattern == "permutation"


class TestViewQuery:
    def test_parse_view(self):
        v = parse_view("pairs(x, z) :- R(x,y), R(y,z)")
        assert v.head == ("x", "z")
        assert v.name == "pairs"

    def test_head_must_be_in_body(self):
        with pytest.raises(ValueError):
            parse_view("q(w) :- R(x,y)")

    def test_headless_rejected(self):
        with pytest.raises(ValueError):
            parse_view("R(x,y)")

    def test_evaluate(self, chain_db):
        v = parse_view("q(x, z) :- R(x,y), R(y,z)")
        assert v.evaluate(chain_db) == {(1, 3), (2, 3), (3, 3)}


class TestDeletionPropagation:
    def test_basic(self, chain_db):
        """Removing (1,3) from the 2-hop view needs one deletion."""
        v = parse_view("q(x, z) :- R(x,y), R(y,z)")
        res = deletion_propagation(v, chain_db, (1, 3))
        assert res.value == 1
        # Deleting the returned set indeed removes the output tuple.
        after = chain_db.minus(res.contingency_set)
        assert (1, 3) not in v.evaluate(after)

    def test_tuple_not_in_view(self, chain_db):
        v = parse_view("q(x, z) :- R(x,y), R(y,z)")
        assert deletion_propagation(v, chain_db, (9, 9)).value == 0

    def test_shared_infrastructure_costs_more(self):
        """An output tuple derivable two ways needs two deletions."""
        db = Database()
        db.add_all("R", [(1, 2), (1, 3), (2, 4), (3, 4)])
        v = parse_view("q(x, z) :- R(x,y), R(y,z)")
        res = deletion_propagation(v, db, (1, 4))
        assert res.value == 2

    def test_exogenous_sources_respected(self):
        db = Database()
        db.declare("R", 2, exogenous=True)
        db.add("R", 1, 2)
        db.add("S", 2, 3)
        v = parse_view("q(x, z) :- R(x,y), S(y,z)")
        res = deletion_propagation(v, db, (1, 3))
        assert res.value == 1
        assert res.contingency_set == frozenset({DBTuple("S", (2, 3))})

    def test_arity_mismatch_rejected(self, chain_db):
        v = parse_view("q(x) :- R(x,y)")
        with pytest.raises(ValueError):
            deletion_propagation(v, chain_db, (1, 2))

    def test_matches_direct_resilience(self, chain_db):
        """Specialization equals resilience of the manually-built query."""
        v = parse_view("q(x) :- R(x,y), R(y,z)")
        res = deletion_propagation(v, chain_db, (1,))
        # Manual: pin x = 1 by keeping only witnesses with x = 1.
        from repro.query.evaluation import witness_tuple_sets

        boolean = parse_query("R(x,y), R(y,z), __s^x(x)")
        db = chain_db.copy()
        db.declare("__s", 1, exogenous=True)
        db.add("__s", 1)
        assert res.value == resilience_exact(db, boolean).value
