"""Unit tests for the database substrate (repro.db)."""

import pytest

from repro.db import Database, DBTuple, Relation


class TestDBTuple:
    def test_identity_includes_relation(self):
        assert DBTuple("R", (1, 2)) == DBTuple("R", (1, 2))
        assert DBTuple("R", (1, 2)) != DBTuple("S", (1, 2))

    def test_hashable_and_usable_in_sets(self):
        s = {DBTuple("R", (1, 2)), DBTuple("R", (1, 2)), DBTuple("R", (2, 1))}
        assert len(s) == 2

    def test_immutable(self):
        t = DBTuple("R", (1, 2))
        with pytest.raises(AttributeError):
            t.values = (3, 4)

    def test_arity(self):
        assert DBTuple("R", (1,)).arity == 1
        assert DBTuple("W", (1, 2, 3)).arity == 3

    def test_repr(self):
        assert repr(DBTuple("R", (1, 2))) == "R(1, 2)"

    def test_ordering_is_total_on_mixed_values(self):
        ts = [DBTuple("R", (("a", 1),)), DBTuple("R", (2,)), DBTuple("R", ("x",))]
        assert sorted(ts)  # must not raise


class TestRelation:
    def test_arity_enforced(self):
        rel = Relation("R", 2)
        with pytest.raises(ValueError):
            rel.add(1)

    def test_set_semantics(self):
        rel = Relation("R", 2)
        rel.add(1, 2)
        rel.add(1, 2)
        assert len(rel) == 1

    def test_contains_by_tuple_or_values(self):
        rel = Relation("R", 2, tuples=[(1, 2)])
        assert DBTuple("R", (1, 2)) in rel
        assert (1, 2) in rel
        assert (2, 1) not in rel

    def test_copy_is_independent(self):
        rel = Relation("R", 1, tuples=[(1,)])
        clone = rel.copy()
        clone.add(2)
        assert len(rel) == 1 and len(clone) == 2

    def test_invalid_arity(self):
        with pytest.raises(ValueError):
            Relation("R", 0)


class TestDatabase:
    def test_add_declares_relation(self):
        db = Database()
        db.add("R", 1, 2)
        assert db.relation("R").arity == 2

    def test_declare_conflicting_arity(self):
        db = Database()
        db.declare("R", 2)
        with pytest.raises(ValueError):
            db.declare("R", 3)

    def test_size_counts_tuples(self, chain_db):
        assert len(chain_db) == 3

    def test_active_domain(self, chain_db):
        assert chain_db.active_domain() == {1, 2, 3}

    def test_minus_removes_facts(self, chain_db):
        t = DBTuple("R", (1, 2))
        smaller = chain_db.minus({t})
        assert t not in smaller
        assert t in chain_db  # original untouched

    def test_minus_rejects_exogenous(self):
        db = Database()
        db.declare("R", 2, exogenous=True)
        t = db.add("R", 1, 2)
        with pytest.raises(ValueError):
            db.minus({t})

    def test_minus_rejects_unknown_fact(self, chain_db):
        with pytest.raises(ValueError):
            chain_db.minus({DBTuple("R", (9, 9))})

    def test_endogenous_tuples_excludes_exogenous(self):
        db = Database()
        db.declare("H", 2, exogenous=True)
        db.add("H", 1, 2)
        db.add("R", 1, 2)
        endo = db.endogenous_tuples()
        assert endo == {DBTuple("R", (1, 2))}

    def test_equality_is_structural(self, chain_db):
        other = Database()
        other.add_all("R", [(3, 3), (2, 3), (1, 2)])
        assert chain_db == other
        assert hash(chain_db) == hash(other)

    def test_set_exogenous(self, chain_db):
        chain_db.set_exogenous("R")
        assert chain_db.relation("R").exogenous

    def test_set_exogenous_unknown(self, chain_db):
        with pytest.raises(KeyError):
            chain_db.set_exogenous("Z")

    def test_add_all_unary_scalars(self):
        db = Database()
        db.add_all("A", [1, 2, 3])
        assert len(db.relation("A")) == 3

    def test_iteration_is_disjoint_union(self):
        db = Database()
        db.add("R", 1, 2)
        db.add("S", 1, 2)
        assert len(set(db)) == 2
