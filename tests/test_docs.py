"""Documentation guarantees, enforced.

Two checks keep the docs honest as the system grows:

* every public module under ``repro.resilience``, ``repro.witness``,
  and ``repro.core`` carries a module docstring that names the paper
  section or proposition it implements (so code and paper stay
  cross-referenced at the module level);
* every relative link in the repository's Markdown files resolves to a
  real file (the CI docs job runs this test, so broken cross-links
  fail the build).
"""

import re
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC_ROOT = REPO_ROOT / "src" / "repro"

# Packages whose modules must anchor themselves in the paper.
AUDITED_PACKAGES = (
    "resilience",
    "witness",
    "core",
    "parallel",
    "incremental",
    "serving",
    "planner",
    "storage",
    "ijp",
)

# Standalone documentation pages every release must ship (each one is
# also link-checked below like any other Markdown file).
REQUIRED_DOCS_PAGES = (
    "docs/architecture.md",
    "docs/solvers.md",
    "docs/parallelism.md",
    "docs/api.md",
    "docs/incremental.md",
    "docs/performance.md",
    "docs/serving.md",
    "docs/planner.md",
    "docs/ijp.md",
)

# Modules outside the audited packages that must still anchor
# themselves in the paper (hot-path engine layers).
EXTRA_AUDITED_MODULES = ("query/columnar.py",)

# What counts as "naming a paper section or proposition".
PAPER_REFERENCE = re.compile(
    r"(§\s*\d"
    r"|Section\s+\d"
    r"|Propositions?\s+\d"
    r"|Prop\.?\s*\d"
    r"|Theorems?\s+\d"
    r"|Thm\s+\d"
    r"|Definitions?\s+\d"
    r"|Def\.?\s+\d"
    r"|Lemmas?\s+\d"
    r"|Figures?\s+\d"
    r"|Fig\.?\s*\d"
    r"|Appendix\s+[A-Z])"
)

MARKDOWN_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")


def _audited_modules():
    modules = []
    for package in AUDITED_PACKAGES:
        for path in sorted((SRC_ROOT / package).glob("*.py")):
            modules.append(path)
    for rel in EXTRA_AUDITED_MODULES:
        modules.append(SRC_ROOT / rel)
    return modules


def _module_docstring(path: Path) -> str:
    import ast

    tree = ast.parse(path.read_text())
    return ast.get_docstring(tree) or ""


@pytest.mark.parametrize(
    "path", _audited_modules(), ids=lambda p: f"{p.parent.name}/{p.name}"
)
def test_module_docstring_names_paper_anchor(path):
    """Every audited module states which paper result it implements."""
    doc = _module_docstring(path)
    assert doc, f"{path} has no module docstring"
    assert PAPER_REFERENCE.search(doc), (
        f"{path} docstring does not name a paper section/proposition "
        f"(expected something matching e.g. 'Section 2', 'Proposition 31', "
        f"'Theorem 24')"
    )


def _markdown_files():
    return sorted(
        p
        for p in REPO_ROOT.rglob("*.md")
        if not any(part.startswith(".") for part in p.parts)
    )


@pytest.mark.parametrize(
    "md_path", _markdown_files(), ids=lambda p: str(p.relative_to(REPO_ROOT))
)
def test_markdown_relative_links_resolve(md_path):
    """Relative links in Markdown must point at files that exist."""
    broken = []
    for target in MARKDOWN_LINK.findall(md_path.read_text()):
        if re.match(r"^[a-z][a-z0-9+.-]*:", target) or target.startswith("#"):
            continue  # absolute URL (http:, mailto:, ...) or in-page anchor
        target_path = target.split("#", 1)[0]
        if not target_path:
            continue
        if not (md_path.parent / target_path).exists():
            broken.append(target)
    assert not broken, f"{md_path}: broken relative links {broken}"


def test_audit_covers_the_expected_packages():
    """The audit walks real files — guard against a silently empty glob."""
    modules = _audited_modules()
    names = {p.name for p in modules}
    assert "approx.py" in names and "structure.py" in names
    assert "executor.py" in names and "shards.py" in names  # repro.parallel
    assert "session.py" in names  # repro.incremental
    assert "columnar.py" in names  # the vectorized join layer
    assert {"server.py", "wire.py", "admission.py", "client.py"} <= names
    assert {"features.py", "model.py"} <= names  # repro.planner
    assert {"layout.py", "stored.py"} <= names  # repro.storage
    assert {"rgs.py", "space.py", "sweep.py"} <= names  # repro.ijp
    assert len(modules) >= 30


@pytest.mark.parametrize("page", REQUIRED_DOCS_PAGES)
def test_required_docs_pages_exist(page):
    """Every documented subsystem ships its page (the link check above
    then validates the page's own cross-references)."""
    path = REPO_ROOT / page
    assert path.is_file(), f"missing documentation page {page}"
    assert path.read_text().lstrip().startswith("#"), f"{page} has no title"


@pytest.mark.parametrize(
    "page",
    (
        "docs/parallelism.md",
        "docs/api.md",
        "docs/incremental.md",
        "docs/serving.md",
        "docs/planner.md",
        "docs/ijp.md",
    ),
)
def test_readme_links_the_new_pages(page):
    """README's API section must route readers to the reference pages."""
    readme = (REPO_ROOT / "README.md").read_text()
    assert page in readme, f"README.md does not link {page}"


def test_performance_page_documents_the_engine_knobs():
    """docs/performance.md must name every backend selector and the
    benchmark trajectory it teaches readers to refresh."""
    page = (REPO_ROOT / "docs" / "performance.md").read_text()
    for needle in (
        "REPRO_JOIN_BACKEND",
        "REPRO_KERNEL_BACKEND",
        "REPRO_FLOW_BACKEND",
        "REPRO_COLUMNAR_MIN_TUPLES",
        "REPRO_COLUMNAR_CHUNK_ROWS",
        "BENCH_e18_hotpaths.json",
        "bench --json",
    ):
        assert needle in page, f"docs/performance.md does not mention {needle}"


def test_performance_page_documents_out_of_core_storage():
    """docs/performance.md must cover the 1.8.0 storage engine: the
    snapshot layout, the streaming enumeration, and the E22 gate."""
    page = (REPO_ROOT / "docs" / "performance.md").read_text()
    for needle in (
        "Out-of-core storage",
        "repro.storage",
        "Chunked streaming enumeration",
        "numpy.memmap",
        "ingest_database",
        "SnapshotWriter",
        "open_stored_database",
        "content_digest",
        "BENCH_e22_outofcore.json",
        "REPRO_BENCH_E22_TUPLES",
    ):
        assert needle in page, f"docs/performance.md does not mention {needle}"


def test_api_page_documents_the_storage_surface():
    """docs/api.md must record the 1.8.0 storage API: the snapshot
    lifecycle symbols, the read-only handle, and the layout version."""
    page = (REPO_ROOT / "docs" / "api.md").read_text()
    for needle in (
        "Out-of-core snapshots",
        "ingest_database",
        "SnapshotWriter",
        "open_snapshot",
        "open_stored_database",
        "StoredDatabase",
        "LAYOUT_VERSION",
        "storage_snapshot",
        "REPRO_COLUMNAR_CHUNK_ROWS",
    ):
        assert needle in page, f"docs/api.md does not mention {needle}"


def test_outofcore_bench_record_exists():
    """The E22 out-of-core benchmark has committed its trajectory
    record with every gate passing."""
    import json

    record = json.loads((REPO_ROOT / "BENCH_e22_outofcore.json").read_text())
    assert record["bench"] == "e22_outofcore"
    gates = record["gates"]
    assert gates["under_ceiling"] is True
    assert gates["peak_rss_mb"] <= gates["rss_ceiling_mb"]
    assert gates["value_matches_ground_truth"] is True
    assert gates["bit_identical_at_overlap"] is True
    assert gates["planner_out_of_core"] is True


def test_bench_trajectory_record_exists():
    """The machine-readable benchmark trajectory has its first entry."""
    import json

    record = json.loads((REPO_ROOT / "BENCH_e18_hotpaths.json").read_text())
    assert record["bench"] == "e18_hotpaths"
    assert set(record["layers"]) == {
        "a_structure_build",
        "b_bnb_solve",
        "c_flow_min_cut",
    }
    for layer in record["layers"].values():
        assert layer["speedup"] >= layer["gate"]


def test_serving_page_documents_the_protocol():
    """docs/serving.md must cover the endpoints, the coalescing story,
    and every serving environment variable."""
    page = (REPO_ROOT / "docs" / "serving.md").read_text()
    for needle in (
        "POST /solve",
        "POST /solve_batch",
        "GET /health",
        "GET /metrics",
        "coalesc",  # coalescing / coalesced
        "admission",
        "wire_schema",
        "Retry-After",
        "repro serve",
        "REPRO_SERVING_MAX_EXACT_TUPLES",
        "REPRO_SERVING_MAX_CONCURRENT",
        "BENCH_e19_serving.json",
    ):
        assert needle in page, f"docs/serving.md does not mention {needle}"


def test_serving_bench_record_exists():
    """The E19 serving benchmark has committed its trajectory record."""
    import json

    record = json.loads((REPO_ROOT / "BENCH_e19_serving.json").read_text())
    assert record["bench"] == "e19_serving"
    gates = record["gates"]
    assert gates["coalescing_speedup"]["value"] >= gates["coalescing_speedup"]["gate"]
    assert gates["warm_p99_ms"]["value"] <= gates["warm_p99_ms"]["gate"]
    assert record["answers_bit_identical"] is True


def test_solvers_page_documents_the_weighted_objective():
    """docs/solvers.md must teach the min-cost objective: the cost
    semantics, the delegation contract, and the flow soundness
    boundary (the normalization caveat is load-bearing)."""
    page = (REPO_ROOT / "docs" / "solvers.md").read_text()
    for needle in (
        "weighted=True",
        "minimum-cost hitting set",
        "unit-cost delegation",
        "cost-aware",
        "q_perm",
        "normalization",
        "bench_e20_weighted",
    ):
        assert needle in page, f"docs/solvers.md does not mention {needle}"


def test_api_page_documents_weighted_and_the_schema_bumps():
    """docs/api.md must record the 1.6.0 surface: the weighted kwarg,
    the wire schema bump, and the cache-key invalidation note."""
    page = (REPO_ROOT / "docs" / "api.md").read_text()
    for needle in (
        "weighted=True",
        "cost=",
        "has_weighted_costs",
        "Wire schema bumped 1 → 2",
        "CACHE_SCHEMA",
        "assign_skewed_costs",
        "BENCH_e20_weighted.json",
    ):
        assert needle in page, f"docs/api.md does not mention {needle}"
    serving = (REPO_ROOT / "docs" / "serving.md").read_text()
    assert '"costs"' in serving and '"weighted"' in serving, (
        "docs/serving.md does not document the schema-2 wire fields"
    )


def test_weighted_bench_record_exists():
    """The E20 weighted benchmark has committed its trajectory record."""
    import json

    record = json.loads((REPO_ROOT / "BENCH_e20_weighted.json").read_text())
    assert record["bench"] == "e20_weighted"
    gates = record["gates"]
    assert gates["flow_vs_ilp_cases"] > 0
    assert gates["kernel_bnb_vs_ilp_cases"] > 0
    assert gates["unit_cost_delegation_cases"] > 0
    assert record["all_agreed"] is True


def test_planner_page_documents_the_contract():
    """docs/planner.md must cover the features, the cost-model format,
    and the precedence chain (kwarg > env var > planner > default) —
    the contract the differential harness enforces."""
    page = (REPO_ROOT / "docs" / "planner.md").read_text()
    for needle in (
        "endogenous_tuples",
        "witness_estimate",
        "REPRO_PLANNER",
        "REPRO_PLANNER_MODEL",
        "REPRO_SOLVER_BACKEND",
        "explicit kwarg > env var > planner > static default",
        "planner calibrate",
        "planner explain",
        "repro.planner",
        "tests/test_planner.py",
        "BENCH_e21_planner.json",
    ):
        assert needle in page, f"docs/planner.md does not mention {needle}"


def test_planner_bench_record_exists():
    """The E21 planner benchmark has committed its trajectory record."""
    import json

    record = json.loads((REPO_ROOT / "BENCH_e21_planner.json").read_text())
    assert record["bench"] == "e21_planner"
    gates = record["gates"]
    assert (
        gates["speedup_vs_best_config"] >= gates["min_speedup_required"]
    )
    assert gates["values_identical_configs"] == 16
    assert gates["intervals_identical_configs"] == 16
    assert gates["plans_deterministic"] is True


def test_ijp_page_documents_the_distributed_search():
    """docs/ijp.md must cover the Definition 48 conditions, the RGS
    engine's pruning/prescreen layers, the sharded sweep's resume
    semantics, and the open-query table with its degenerate-certificate
    punchline."""
    page = (REPO_ROOT / "docs" / "ijp.md").read_text()
    for needle in (
        "Definition 48",
        "Conjecture 49",
        "restricted growth string",
        "hitting-set prescreen",
        "repro ijp sweep",
        "--cache-dir",
        "--workers",
        "shard",
        "resume",
        "OPEN_QUERY_STATUS",
        "proper",
        "degenerate",
        "q_S3cc",
        "q_AS3conf",
        "q_z6",
        "bit-identical",
        "BENCH_e23_ijp.json",
        "REPRO_BENCH_E23_COPIES",
    ):
        assert needle in page, f"docs/ijp.md does not mention {needle}"


def test_api_page_documents_the_ijp_surface():
    """docs/api.md must record the 1.9.0 IJP search surface."""
    page = (REPO_ROOT / "docs" / "api.md").read_text()
    for needle in (
        "sweep_space",
        "sweep_range",
        "standing_sweep",
        "ijp_search_reference",
        "IJPCertificate",
        "OPEN_QUERY_STATUS",
        "certificate_is_proper",
        "random_three_occurrence_cq",
        "declare_vocabulary",
        "BENCH_e23_ijp.json",
    ):
        assert needle in page, f"docs/api.md does not mention {needle}"


def test_ijp_bench_record_exists():
    """The E23 distributed-IJP benchmark has committed its trajectory
    record with every gate passing."""
    import json

    record = json.loads((REPO_ROOT / "BENCH_e23_ijp.json").read_text())
    assert record["bench"] == "e23_ijp"
    gates = record["gates"]
    assert gates["speedup_vs_reference"]["value"] >= (
        gates["speedup_vs_reference"]["gate"]
    )
    assert gates["parallel_bit_identical"] is True
    assert gates["triangle_rediscovered"] is True
    assert gates["resume_without_recompute"] is True


def test_api_reference_tracks_the_package_version():
    """docs/api.md documents a version; it must be the shipped one."""
    import sys

    sys.path.insert(0, str(REPO_ROOT / "src"))
    try:
        import repro
    finally:
        sys.path.pop(0)
    api = (REPO_ROOT / "docs" / "api.md").read_text()
    assert repro.__version__ in api, (
        f"docs/api.md does not mention the current version "
        f"{repro.__version__}"
    )
