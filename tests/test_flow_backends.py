"""The csgraph flow backbone against the networkx reference.

The paper's PTIME algorithms (Propositions 12, 13, 31, 33, 36, 41, 44)
reduce resilience to s-t min cut; ``REPRO_FLOW_BACKEND`` selects
between scipy's C-backed :func:`~scipy.sparse.csgraph.maximum_flow`
(default) and the original networkx path.  The contract checked here:
equal cut *values* everywhere, and every returned cut is a valid,
inclusion-minimal contingency set (the Lemma 55 property) — the
concrete sets may differ, since the backends extract different (equally
minimal) residual cuts.
"""

import os
from contextlib import contextmanager

import pytest

from repro.query.zoo import ALL_QUERIES
from repro.resilience.exact import is_contingency_set, resilience_exact
from repro.resilience.flow_linear import LinearFlowSolver
from repro.resilience.flow_special import (
    solve_qA3perm_R,
    solve_qACconf,
    solve_qAperm,
    solve_qperm,
    solve_qSwx3perm_R,
    solve_qTS3conf,
    solve_qz3,
)
from repro.resilience.flownet import FlowNetwork, flow_backend
from repro.witness import clear_witness_cache
from repro.workloads import random_database_for_query

BACKENDS = ("csgraph", "networkx")

# The full zoo of bespoke special-case solvers (name -> callable).
SPECIAL_SOLVERS = {
    "q_perm": lambda db, q: solve_qperm(db),
    "q_Aperm": lambda db, q: solve_qAperm(db),
    "q_ACconf": lambda db, q: solve_qACconf(db),
    "q_A3perm_R": lambda db, q: solve_qA3perm_R(db),
    "q_Swx3perm_R": lambda db, q: solve_qSwx3perm_R(db),
    "q_TS3conf": solve_qTS3conf,
    "q_z3": lambda db, q: solve_qz3(db),
}

# Flow-safe linear queries solved through LinearFlowSolver (the zoo's
# q_lin plus two parsed sj-free chains).
LINEAR_QUERIES = (
    "q_lin",
    "q() :- A(x), R(x,y), B(y)",
    "q() :- A(x), R(x,y), S(y,z), B(z)",
)


@contextmanager
def _backend(name):
    old = os.environ.get("REPRO_FLOW_BACKEND")
    os.environ["REPRO_FLOW_BACKEND"] = name
    try:
        yield
    finally:
        if old is None:
            os.environ.pop("REPRO_FLOW_BACKEND", None)
        else:
            os.environ["REPRO_FLOW_BACKEND"] = old


def _assert_minimal_contingency(database, query, result):
    """The cut is feasible, optimal-sized, and inclusion-minimal."""
    gamma = set(result.contingency_set)
    assert len(gamma) == result.value
    if result.value == 0:
        return
    assert is_contingency_set(database, query, gamma)
    for fact in sorted(gamma):
        assert not is_contingency_set(database, query, gamma - {fact}), (
            f"{fact!r} is redundant in the returned cut"
        )


class TestSpecialSolverZoo:
    @pytest.mark.parametrize("name", sorted(SPECIAL_SOLVERS))
    def test_backends_agree_and_cuts_are_minimal(self, name):
        query = ALL_QUERIES[name]
        fn = SPECIAL_SOLVERS[name]
        for seed in range(6):
            database = random_database_for_query(
                query, domain_size=6, density=0.4, seed=seed
            )
            results = {}
            for backend in BACKENDS:
                with _backend(backend):
                    results[backend] = fn(database, query)
            assert results["csgraph"].value == results["networkx"].value
            clear_witness_cache()
            assert (
                resilience_exact(database, query).value
                == results["csgraph"].value
            )
            for backend in BACKENDS:
                _assert_minimal_contingency(database, query, results[backend])


class TestLinearFlow:
    @pytest.mark.parametrize("name", LINEAR_QUERIES)
    def test_backends_agree_and_cuts_are_minimal(self, name):
        from repro.query.parser import parse_query

        query = ALL_QUERIES[name] if name in ALL_QUERIES else parse_query(name)
        solver = LinearFlowSolver(query)
        for seed in range(6):
            database = random_database_for_query(
                query, domain_size=5, density=0.4, seed=seed
            )
            results = {}
            for backend in BACKENDS:
                with _backend(backend):
                    results[backend] = solver.solve(database)
            assert results["csgraph"].value == results["networkx"].value
            clear_witness_cache()
            assert (
                resilience_exact(database, query).value
                == results["csgraph"].value
            )
            for backend in BACKENDS:
                _assert_minimal_contingency(database, query, results[backend])


class TestFlowNetworkBackends:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_bottleneck(self, backend):
        with _backend(backend):
            net = FlowNetwork()
            for name in ("a", "b"):
                net.source_edge(f"{name}_in")
                net.add_unit_edge(f"{name}_in", f"{name}_out", payload=name)
                net.add_inf_edge(f"{name}_out", "mid_in")
            net.add_unit_edge("mid_in", "mid_out", payload="mid")
            net.sink_edge("mid_out")
            value, payloads = net.min_cut()
        assert value == 1 and payloads == ["mid"]
        assert isinstance(value, int)

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_infinite_path_raises(self, backend):
        """Big-M detection: an all-infinite s-t path is a construction
        bug and must raise, on both backends."""
        with _backend(backend):
            net = FlowNetwork()
            net.source_edge("a")
            net.sink_edge("a")
            with pytest.raises(RuntimeError):
                net.min_cut()

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_integer_capacities_no_rounding(self, backend):
        """Unit edges carry int capacity 1; the value comes back as an
        exact int with no rounding repair."""
        with _backend(backend):
            net = FlowNetwork()
            for i in range(5):
                net.source_edge(f"{i}_in")
                net.add_unit_edge(f"{i}_in", f"{i}_out", payload=i)
                net.sink_edge(f"{i}_out")
            value, payloads = net.min_cut()
        assert value == 5 and type(value) is int
        assert sorted(payloads) == [0, 1, 2, 3, 4]
        for _u, _v, data in net.graph.edges(data=True):
            if data["payload"] is not None:
                assert data["capacity"] == 1 and type(data["capacity"]) is int

    def test_csgraph_cut_is_source_minimal(self):
        """csgraph extracts the cut closest to the source (the unique
        minimal source side of the residual partition)."""
        with _backend("csgraph"):
            net = FlowNetwork()
            net.source_edge("x_in")
            net.add_unit_edge("x_in", "x_out", payload="near")
            net.add_inf_edge("x_out", "y_in")
            net.add_unit_edge("y_in", "y_out", payload="far")
            net.sink_edge("y_out")
            assert net.min_cut() == (1, ["near"])

    def test_backend_default_and_validation(self):
        old = os.environ.pop("REPRO_FLOW_BACKEND", None)
        try:
            assert flow_backend() == "csgraph"
        finally:
            if old is not None:
                os.environ["REPRO_FLOW_BACKEND"] = old
        with _backend("typo"):
            with pytest.raises(ValueError):
                flow_backend()
