"""Tests for the flow-network helper."""

import pytest

from repro.resilience.flownet import FlowNetwork


class TestFlowNetwork:
    def test_simple_cut(self):
        net = FlowNetwork()
        net.source_edge("a_in")
        net.add_unit_edge("a_in", "a_out", payload="A")
        net.sink_edge("a_out")
        value, payloads = net.min_cut()
        assert value == 1
        assert payloads == ["A"]

    def test_parallel_paths(self):
        net = FlowNetwork()
        for name in ("a", "b"):
            net.source_edge(f"{name}_in")
            net.add_unit_edge(f"{name}_in", f"{name}_out", payload=name)
            net.sink_edge(f"{name}_out")
        value, payloads = net.min_cut()
        assert value == 2
        assert set(payloads) == {"a", "b"}

    def test_bottleneck_preferred(self):
        # Two unit edges funnel into one unit edge: cut the bottleneck.
        net = FlowNetwork()
        for name in ("a", "b"):
            net.source_edge(f"{name}_in")
            net.add_unit_edge(f"{name}_in", f"{name}_out", payload=name)
            net.add_inf_edge(f"{name}_out", "mid_in")
        net.add_unit_edge("mid_in", "mid_out", payload="mid")
        net.sink_edge("mid_out")
        value, payloads = net.min_cut()
        assert value == 1
        assert payloads == ["mid"]

    def test_empty_network(self):
        net = FlowNetwork()
        assert net.min_cut() == (0, [])

    def test_no_path(self):
        net = FlowNetwork()
        net.source_edge("a")
        net.sink_edge("b")  # disconnected from a
        value, payloads = net.min_cut()
        assert value == 0 and payloads == []

    def test_infinite_path_raises(self):
        net = FlowNetwork()
        net.source_edge("a")
        net.sink_edge("a")
        with pytest.raises(RuntimeError):
            net.min_cut()

    def test_duplicate_unit_edge_rejected(self):
        net = FlowNetwork()
        net.add_unit_edge("u", "v", payload=1)
        with pytest.raises(ValueError):
            net.add_unit_edge("u", "v", payload=2)

    def test_duplicate_inf_edge_is_noop(self):
        net = FlowNetwork()
        net.add_inf_edge("u", "v")
        net.add_inf_edge("u", "v")
        assert net.graph.number_of_edges() == 1

    def test_series_cuts_pay_once(self):
        """With two equal unit cuts in series, exactly one is charged."""
        net = FlowNetwork()
        net.source_edge("x_in")
        net.add_unit_edge("x_in", "x_out", payload="near")
        net.add_inf_edge("x_out", "y_in")
        net.add_unit_edge("y_in", "y_out", payload="far")
        net.sink_edge("y_out")
        value, payloads = net.min_cut()
        assert value == 1
        assert payloads in (["near"], ["far"])
