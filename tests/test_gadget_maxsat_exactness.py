"""MaxSAT-exactness of the 3SAT gadgets.

A stronger property than the biconditional the proofs need: for the
chain (Prop 10), triangle (Prop 56), and ABperm (Prop 34) gadgets, the
resilience equals ``k`` plus the *minimum number of unsatisfied
clauses* over all assignments:

    rho(D_psi) = k + min_unsat(psi)

This says each unsatisfied clause costs exactly one extra tuple at the
optimum — the gadgets are cost-exact reductions from MaxSAT, not just
decision reductions from SAT.  (The paper only claims the decision
biconditional; exactness falls out of the constructions and is a nice
sanity property: any off-by-one in gadget geometry would break it.)
"""

import itertools

import pytest

from repro.reductions.chain_gadgets import chain_instance
from repro.reductions.perm_gadgets import abperm_instance
from repro.reductions.rats_gadgets import sj1_rats_instance
from repro.reductions.triangle import triangle_instance
from repro.resilience.exact import resilience_ilp
from repro.workloads import CNFFormula, random_3cnf

ALL_SIGNS = tuple(
    tuple(s * (i + 1) for i, s in enumerate(signs))
    for signs in itertools.product([1, -1], repeat=3)
)

FORMULAS = [
    random_3cnf(3, 2, seed=0),
    random_3cnf(3, 3, seed=1),
    random_3cnf(4, 2, seed=2),
    CNFFormula(3, ALL_SIGNS),        # min_unsat = 1
    CNFFormula(3, ALL_SIGNS[:6]),    # satisfiable subset
]


def _min_unsat(formula: CNFFormula) -> int:
    return formula.num_clauses - formula.max_satisfiable()


@pytest.mark.parametrize("formula", FORMULAS, ids=lambda f: f"m{f.num_clauses}")
class TestMaxSATExactness:
    def test_chain_gadget(self, formula):
        inst = chain_instance(formula)
        rho = resilience_ilp(inst.database, inst.query).value
        assert rho == inst.k + _min_unsat(formula)

    def test_triangle_gadget(self, formula):
        inst = triangle_instance(formula)
        rho = resilience_ilp(inst.database, inst.query).value
        assert rho == inst.k + _min_unsat(formula)

    def test_abperm_gadget(self, formula):
        inst = abperm_instance(formula)
        rho = resilience_ilp(inst.database, inst.query).value
        assert rho == inst.k + _min_unsat(formula)


class TestChainExpansionExactness:
    @pytest.mark.parametrize("unaries", ["a", "c", "ac", "abc"])
    def test_expansions_on_unsat_formula(self, unaries):
        formula = CNFFormula(3, ALL_SIGNS)
        inst = chain_instance(formula, unaries)
        rho = resilience_ilp(inst.database, inst.query).value
        assert rho == inst.k + 1  # min_unsat = 1


class TestRatsExactness:
    def test_sj1_rats_on_unsat_formula(self):
        formula = CNFFormula(3, ALL_SIGNS)
        inst = sj1_rats_instance(formula)
        rho = resilience_ilp(inst.database, inst.query).value
        assert rho == inst.k + 1
