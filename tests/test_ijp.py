"""Tests for Independent Join Paths (Section 9, Appendix C)."""

import pytest

from repro.db import Database, DBTuple
from repro.ijp import (
    canonical_database,
    check_ijp,
    example_58_qvc,
    example_59_triangle,
    example_60_z5,
    example_60_z5_corrected,
    example_61_failed,
    find_ijp_pair,
    ijp_search,
    set_partitions,
)
from repro.query.zoo import q_Aperm, q_chain, q_perm, q_triangle, q_vc


class TestChecker:
    def test_example_58_is_ijp(self):
        q, db, pair = example_58_qvc()
        report = check_ijp(db, q, *pair)
        assert report.is_ijp
        assert report.resilience == 1

    def test_example_59_is_ijp(self):
        q, db, pair = example_59_triangle()
        report = check_ijp(db, q, *pair)
        assert report.is_ijp
        assert report.resilience == 2

    def test_example_60_as_printed_fails_condition_5(self):
        """Erratum: the printed database has the extra witness (5,2,3);
        removing A(13) leaves resilience 4, so condition 5 fails."""
        q, db, pair = example_60_z5()
        report = check_ijp(db, q, *pair)
        assert not report.is_ijp
        assert report.conditions[:4] == [True, True, True, True]
        assert report.conditions[4] is False
        assert report.resilience == 4  # matches the paper's rho

    def test_example_60_corrected_is_ijp(self):
        q, db, pair = example_60_z5_corrected()
        report = check_ijp(db, q, *pair)
        assert report.is_ijp
        assert report.resilience is not None

    def test_example_61_fails_condition_4(self):
        """Example 61: exogenous A holds a subvector of one endpoint only."""
        q, db, pair = example_61_failed()
        report = check_ijp(db, q, *pair)
        assert not report.is_ijp
        assert report.conditions[3] is False

    def test_comparable_endpoints_fail_condition_1(self):
        q, db, _ = example_58_qvc()
        t = DBTuple("R", (1,))
        report = check_ijp(db, q, t, t)
        assert not report.conditions[0]

    def test_find_ijp_pair(self):
        q, db, pair = example_59_triangle()
        report = find_ijp_pair(db, q)
        assert report is not None
        assert set(report.pair) == set(pair)

    def test_condition_2_requires_single_witness(self):
        # R(1) sits in two witnesses once we add a second edge.
        db = Database()
        db.add_all("R", [1, 2, 3])
        db.add_all("S", [(1, 2), (1, 3)])
        report = check_ijp(
            db, q_vc, DBTuple("R", (1,)), DBTuple("R", (2,))
        )
        assert not report.conditions[1]


class TestSearch:
    def test_canonical_database(self):
        db = canonical_database(q_chain)
        assert len(db) == 2

    def test_set_partitions_bell_numbers(self):
        assert len(list(set_partitions([1]))) == 1
        assert len(list(set_partitions([1, 2]))) == 2
        assert len(list(set_partitions([1, 2, 3]))) == 5
        assert len(list(set_partitions(list(range(5))))) == 52

    def test_search_finds_qvc_ijp(self):
        report = ijp_search(q_vc, max_joins=1)
        assert report is not None

    def test_search_finds_qchain_ijp(self):
        report = ijp_search(q_chain, max_joins=2)
        assert report is not None

    def test_search_empty_for_easy_qperm(self):
        """PTIME queries should not admit IJPs (Conjecture 49 converse)."""
        assert ijp_search(q_perm, max_joins=2, partition_budget=5000) is None

    def test_search_empty_for_easy_qAperm(self):
        assert ijp_search(q_Aperm, max_joins=1) is None


class TestSearchOnHardQueries:
    """Positive evidence: the search certifies the NP-complete queries."""

    def test_abperm_ijp_found(self):
        from repro.query.zoo import q_ABperm

        assert ijp_search(q_ABperm, max_joins=3, partition_budget=50000) is not None

    def test_cfp_ijp_found(self):
        from repro.query.zoo import q_cfp

        assert ijp_search(q_cfp, max_joins=2, partition_budget=20000) is not None

    def test_ac3conf_ijp_found(self):
        from repro.query.zoo import q_AC3conf

        assert ijp_search(q_AC3conf, max_joins=2, partition_budget=20000) is not None


class TestDefinition48Gaps:
    """Reproduction finding: Definition 48 as printed is satisfiable by
    PTIME queries, so Conjecture 49 needs extra (gluing) conditions.

    These tests pin the behaviour so the finding stays visible; if a
    future refinement of the checker rejects these databases, the
    assertions should flip.
    """

    def test_qACconf_admits_degenerate_ijp(self):
        from repro.query.zoo import q_ACconf

        report = ijp_search(q_ACconf, max_joins=2, partition_budget=20000)
        assert report is not None  # despite q_ACconf being PTIME (Prop 12)

    def test_qSwx3perm_admits_degenerate_ijp(self):
        from repro.query.zoo import q_Swx3perm_R

        report = ijp_search(q_Swx3perm_R, max_joins=1)
        assert report is not None  # despite q_Swx3perm_R being PTIME (Prop 44)

    def test_other_ptime_queries_stay_empty(self):
        from repro.query.zoo import q_A3perm_R, q_TS3conf, q_z3

        assert ijp_search(q_z3, max_joins=2, partition_budget=20000) is None
        assert ijp_search(q_TS3conf, max_joins=1) is None
        assert ijp_search(q_A3perm_R, max_joins=1) is None


class TestSearchRediscoversTrianglePartition:
    def test_triangle_ijp_found_with_three_joins(self):
        """Example 62: the Bell enumeration over 3 canonical copies of
        q_triangle rediscovers an IJP (21147 partitions for 9 constants)."""
        report = ijp_search(q_triangle, max_joins=3, partition_budget=30000)
        assert report is not None
        a, b = report.pair
        assert a.relation == b.relation
