"""Tests for Independent Join Paths (Section 9, Appendix C)."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.db import Database, DBTuple
from repro.ijp import (
    canonical_database,
    check_ijp,
    example_58_qvc,
    example_59_triangle,
    example_60_z5,
    example_60_z5_corrected,
    example_61_failed,
    find_ijp_pair,
    ijp_search,
    ijp_search_reference,
    set_partitions,
)
from repro.ijp import rgs as rgs_mod
from repro.ijp.space import PartitionSpace, sweep_space
from repro.ijp.sweep import (
    OPEN_QUERIES,
    OPEN_QUERY_STATUS,
    allocate_budgets,
    certificate_is_proper,
    default_shard_count,
    sweep,
    sweep_range,
)
from repro.query.zoo import q_ACconf, q_Aperm, q_chain, q_perm, q_triangle, q_vc


class TestChecker:
    def test_example_58_is_ijp(self):
        q, db, pair = example_58_qvc()
        report = check_ijp(db, q, *pair)
        assert report.is_ijp
        assert report.resilience == 1

    def test_example_59_is_ijp(self):
        q, db, pair = example_59_triangle()
        report = check_ijp(db, q, *pair)
        assert report.is_ijp
        assert report.resilience == 2

    def test_example_60_as_printed_fails_condition_5(self):
        """Erratum: the printed database has the extra witness (5,2,3);
        removing A(13) leaves resilience 4, so condition 5 fails."""
        q, db, pair = example_60_z5()
        report = check_ijp(db, q, *pair)
        assert not report.is_ijp
        assert report.conditions[:4] == [True, True, True, True]
        assert report.conditions[4] is False
        assert report.resilience == 4  # matches the paper's rho

    def test_example_60_corrected_is_ijp(self):
        q, db, pair = example_60_z5_corrected()
        report = check_ijp(db, q, *pair)
        assert report.is_ijp
        assert report.resilience is not None

    def test_example_61_fails_condition_4(self):
        """Example 61: exogenous A holds a subvector of one endpoint only."""
        q, db, pair = example_61_failed()
        report = check_ijp(db, q, *pair)
        assert not report.is_ijp
        assert report.conditions[3] is False

    def test_comparable_endpoints_fail_condition_1(self):
        q, db, _ = example_58_qvc()
        t = DBTuple("R", (1,))
        report = check_ijp(db, q, t, t)
        assert not report.conditions[0]

    def test_find_ijp_pair(self):
        q, db, pair = example_59_triangle()
        report = find_ijp_pair(db, q)
        assert report is not None
        assert set(report.pair) == set(pair)

    def test_condition_2_requires_single_witness(self):
        # R(1) sits in two witnesses once we add a second edge.
        db = Database()
        db.add_all("R", [1, 2, 3])
        db.add_all("S", [(1, 2), (1, 3)])
        report = check_ijp(
            db, q_vc, DBTuple("R", (1,)), DBTuple("R", (2,))
        )
        assert not report.conditions[1]


class TestSearch:
    def test_canonical_database(self):
        db = canonical_database(q_chain)
        assert len(db) == 2

    def test_set_partitions_bell_numbers(self):
        assert len(list(set_partitions([1]))) == 1
        assert len(list(set_partitions([1, 2]))) == 2
        assert len(list(set_partitions([1, 2, 3]))) == 5
        assert len(list(set_partitions(list(range(5))))) == 52

    def test_search_finds_qvc_ijp(self):
        report = ijp_search(q_vc, max_joins=1)
        assert report is not None

    def test_search_finds_qchain_ijp(self):
        report = ijp_search(q_chain, max_joins=2)
        assert report is not None

    def test_search_empty_for_easy_qperm(self):
        """PTIME queries should not admit IJPs (Conjecture 49 converse)."""
        assert ijp_search(q_perm, max_joins=2, partition_budget=5000) is None

    def test_search_empty_for_easy_qAperm(self):
        assert ijp_search(q_Aperm, max_joins=1) is None


class TestSearchOnHardQueries:
    """Positive evidence: the search certifies the NP-complete queries."""

    def test_abperm_ijp_found(self):
        from repro.query.zoo import q_ABperm

        assert ijp_search(q_ABperm, max_joins=3, partition_budget=50000) is not None

    def test_cfp_ijp_found(self):
        from repro.query.zoo import q_cfp

        assert ijp_search(q_cfp, max_joins=2, partition_budget=20000) is not None

    def test_ac3conf_ijp_found(self):
        from repro.query.zoo import q_AC3conf

        assert ijp_search(q_AC3conf, max_joins=2, partition_budget=20000) is not None


class TestDefinition48Gaps:
    """Reproduction finding: Definition 48 as printed is satisfiable by
    PTIME queries, so Conjecture 49 needs extra (gluing) conditions.

    These tests pin the behaviour so the finding stays visible; if a
    future refinement of the checker rejects these databases, the
    assertions should flip.
    """

    def test_qACconf_admits_degenerate_ijp(self):
        from repro.query.zoo import q_ACconf

        report = ijp_search(q_ACconf, max_joins=2, partition_budget=20000)
        assert report is not None  # despite q_ACconf being PTIME (Prop 12)

    def test_qSwx3perm_admits_degenerate_ijp(self):
        from repro.query.zoo import q_Swx3perm_R

        report = ijp_search(q_Swx3perm_R, max_joins=1)
        assert report is not None  # despite q_Swx3perm_R being PTIME (Prop 44)

    def test_other_ptime_queries_stay_empty(self):
        from repro.query.zoo import q_A3perm_R, q_TS3conf, q_z3

        assert ijp_search(q_z3, max_joins=2, partition_budget=20000) is None
        assert ijp_search(q_TS3conf, max_joins=1) is None
        assert ijp_search(q_A3perm_R, max_joins=1) is None


class TestSearchRediscoversTrianglePartition:
    def test_triangle_ijp_found_with_three_joins(self):
        """Example 62: the Bell enumeration over 3 canonical copies of
        q_triangle rediscovers an IJP (21147 partitions for 9 constants)."""
        report = ijp_search(q_triangle, max_joins=3, partition_budget=30000)
        assert report is not None
        a, b = report.pair
        assert a.relation == b.relation


class TestRGS:
    """The vectorized restricted-growth-string kernel vs. its recursive
    reference — the same baseline discipline as set_partitions."""

    def test_bell_numbers(self):
        for n, b in [(0, 1), (1, 1), (3, 5), (5, 52), (9, 21147)]:
            assert rgs_mod.bell_number(n) == b

    @given(st.integers(min_value=0, max_value=6))
    def test_leaf_batches_match_reference_enumeration(self, n):
        reference = list(rgs_mod.rgs_reference(n))
        leaves = [
            tuple(int(d) for d in row)
            for batch in rgs_mod.iter_leaf_batches(n)
            for row in batch.codes
        ]
        assert leaves == reference

    @given(st.integers(min_value=1, max_value=6), st.integers(1, 64))
    def test_leaf_batches_independent_of_max_rows(self, n, max_rows):
        small = [
            tuple(int(d) for d in row)
            for batch in rgs_mod.iter_leaf_batches(n, max_rows=max_rows)
            for row in batch.codes
        ]
        assert small == list(rgs_mod.rgs_reference(n))

    @given(st.integers(min_value=1, max_value=7))
    def test_partition_roundtrip(self, n):
        items = [("t", i) for i in range(n)]
        for code in rgs_mod.rgs_reference(n):
            partition = rgs_mod.partition_from_rgs(code, items)
            assert rgs_mod.rgs_from_partition(partition, items) == code

    def test_pruned_leaves_counted_exactly(self):
        """An aggressive pruner's dropped subtrees are charged exactly:
        enumerated + pruned always equals the Bell number."""
        def pruner(codes, maxes):
            # Drop every prefix whose last digit is 0 past position 1.
            keep = np.ones(codes.shape[0], dtype=bool)
            if codes.shape[1] >= 2:
                keep = codes[:, -1] != 0
            return keep

        enumerated = 0
        pruned = 0
        for batch in rgs_mod.iter_leaf_batches(6, pruner=pruner, max_rows=32):
            enumerated += batch.codes.shape[0]
            pruned += batch.pruned
        assert pruned > 0
        assert enumerated + pruned == rgs_mod.bell_number(6)

    @pytest.mark.parametrize("n,num_shards", [(5, 3), (9, 8), (9, 64)])
    def test_shards_cover_the_space_in_order(self, n, num_shards):
        shards = rgs_mod.shard_space(n, num_shards)
        assert [s.index for s in shards] == list(range(len(shards)))
        total = 0
        leaves = []
        for shard in shards:
            assert shard.start == total
            total += shard.leaves
            for batch in rgs_mod.iter_leaf_batches(n, shard.codes, shard.maxes):
                leaves.extend(tuple(int(d) for d in row) for row in batch.codes)
        assert total == rgs_mod.bell_number(n)
        assert leaves == list(rgs_mod.rgs_reference(n))


class TestSpaceEngine:
    """The vectorized Definition 48 screen vs. the per-partition
    reference checker."""

    def test_engine_agrees_with_reference_on_qvc(self):
        """Every 2-copy partition of q_vc, both ways: the engine's
        certificate set must be exactly the partitions the serial
        checker certifies."""
        space = PartitionSpace(q_vc, 2)
        expected = set()
        constants = [(tag, v) for tag in range(2) for v in sorted(q_vc.variables())]
        from repro.ijp.search import _merge_copies

        for partition in set_partitions(constants):
            db = _merge_copies(q_vc, 2, partition)
            if find_ijp_pair(db, q_vc) is not None:
                expected.add(rgs_mod.rgs_from_partition(partition, space.items))
        result = sweep_space(q_vc, 2)
        assert {c.rgs for c in result.certificates} == expected
        assert result.stats.covered == rgs_mod.bell_number(4)

    def test_pruning_is_sound_on_qACconf(self):
        """Pruned and unpruned sweeps find identical certificates and
        cover the same space; the prune rules actually fire here."""
        with_prune = sweep_space(q_ACconf, 2, prune=True)
        without = sweep_space(q_ACconf, 2, prune=False)
        assert with_prune.stats.pruned > 0
        assert without.stats.pruned == 0
        assert with_prune.stats.covered == without.stats.covered
        assert [c.sort_key() for c in with_prune.certificates] == [
            c.sort_key() for c in without.certificates
        ]

    def test_certificate_rebuilds_and_rechecks(self):
        result = sweep_space(q_ACconf, 2)
        assert result.certificates
        cert = result.certificates[0]
        db = cert.database(q_ACconf)
        report = check_ijp(db, q_ACconf, *cert.pair)
        assert report.is_ijp
        assert report.resilience == cert.resilience
        # The known degenerate shape: reflexive endpoints.
        assert not certificate_is_proper(cert)

    def test_budget_counts_covered_partitions(self):
        result = sweep_space(q_chain, 2, budget=10)
        assert result.stats.covered <= 10
        assert not result.stats.exhausted

    def test_content_key_is_stable_and_discriminating(self):
        result = sweep_space(q_ACconf, 2)
        keys = {c.content_key(q_ACconf) for c in result.certificates}
        assert len(keys) == len(result.certificates)
        again = sweep_space(q_ACconf, 2)
        assert keys == {c.content_key(q_ACconf) for c in again.certificates}

    def test_engine_search_agrees_with_reference_search(self):
        """The rewired ijp_search and the recursive baseline agree on
        found-vs-empty for a PTIME/NP-complete/degenerate mix."""
        from repro.query.zoo import q_AC3conf, q_z3

        for query, kwargs in [
            (q_chain, dict(max_joins=2)),
            (q_z3, dict(max_joins=2, partition_budget=20000)),
            (q_AC3conf, dict(max_joins=2, partition_budget=20000)),
        ]:
            fast = ijp_search(query, **kwargs)
            slow = ijp_search_reference(query, **kwargs)
            assert (fast is None) == (slow is None)


class TestSweep:
    """The sharded, resumable, distributed layer."""

    def test_budget_allocation_is_a_lex_prefix(self):
        shards = rgs_mod.shard_space(9, 8)
        budgets = allocate_budgets(shards, 5000)
        assert sum(budgets) == 5000
        # Earlier shards fill completely before later ones get anything.
        tail = [b for b in budgets if b < shards[budgets.index(b)].leaves]
        assert all(b == 0 for b in budgets[budgets.index(tail[0]) + 1 :])
        assert allocate_budgets(shards, None) == [None] * len(shards)

    def test_default_shard_count_is_worker_independent(self):
        assert default_shard_count(6) == 1
        assert default_shard_count(9) == rgs_mod.bell_number(9) // 1024

    def test_parallel_sweep_is_bit_identical_to_serial(self, tmp_path):
        serial = sweep_range(q_triangle, 3, budget=4000)
        parallel = sweep_range(q_triangle, 3, budget=4000, workers=2)
        assert serial.shards == parallel.shards
        assert serial.stats.to_dict() == parallel.stats.to_dict()
        assert [c.sort_key() for c in serial.certificates] == [
            c.sort_key() for c in parallel.certificates
        ]
        assert [m.sort_key() for m in serial.near_misses] == [
            m.sort_key() for m in parallel.near_misses
        ]

    def test_resume_replays_checkpoints_without_recomputing(self, tmp_path):
        cold = sweep_range(q_triangle, 3, budget=4000, cache_dir=tmp_path)
        assert cold.shards_resumed == 0
        warm = sweep_range(q_triangle, 3, budget=4000, cache_dir=tmp_path)
        # Every shard with a nonzero budget slice resumes from disk.
        assert warm.shards_resumed == sum(
            1
            for b in allocate_budgets(
                rgs_mod.shard_space(9, default_shard_count(9)), 4000
            )
            if b
        )
        assert warm.stats.to_dict() == cold.stats.to_dict()
        assert [c.sort_key() for c in warm.certificates] == [
            c.sort_key() for c in cold.certificates
        ]
        assert warm.seconds < cold.seconds

    def test_no_resume_recomputes(self, tmp_path):
        sweep_range(q_ACconf, 2, cache_dir=tmp_path)
        again = sweep_range(q_ACconf, 2, cache_dir=tmp_path, resume=False)
        assert again.shards_resumed == 0

    def test_certificates_stored_content_addressed(self, tmp_path):
        from repro.witness.cache import ResultCache

        result = sweep_range(q_ACconf, 2, cache_dir=tmp_path)
        assert result.certificates
        cache = ResultCache(tmp_path)
        for cert in result.certificates:
            stored = cache.get(cert.content_key(q_ACconf))
            assert stored == cert

    def test_sweep_report_table_and_json(self):
        report = sweep([("q_ACconf", q_ACconf)], copies=2)
        rows = report.table()
        assert len(rows) == 1
        assert rows[0]["query"] == "q_ACconf"
        assert rows[0]["first_certificate_k"] == 2
        assert rows[0]["exhausted"]
        payload = report.to_dict()
        assert payload["sweep_schema"] >= 1
        assert payload["table"] == rows
        assert "q_ACconf" in report.render()

    def test_budgeted_sweep_is_prefix_of_full(self):
        full = sweep_range(q_ACconf, 2)
        cut = sweep_range(q_ACconf, 2, budget=150)
        assert not cut.stats.exhausted
        assert cut.stats.covered <= 150
        full_keys = [c.sort_key() for c in full.certificates]
        cut_keys = [c.sort_key() for c in cut.certificates]
        assert cut_keys == full_keys[: len(cut_keys)]

    def test_open_query_population_matches_the_zoo(self):
        from repro.query.zoo import PAPER_VERDICTS

        open_names = {n for n, v in PAPER_VERDICTS.items() if v == "OPEN"}
        assert set(OPEN_QUERIES) == open_names
        assert set(OPEN_QUERY_STATUS) == open_names

    def test_random_queries_extend_the_standing_population(self):
        from repro.ijp.sweep import standing_queries

        population = standing_queries(random_queries=3, seed=11)
        assert len(population) == len(OPEN_QUERIES) + 3
        again = standing_queries(random_queries=3, seed=11)
        assert [(n, repr(q)) for n, q in population] == [
            (n, repr(q)) for n, q in again
        ]
