"""Randomized update-stream equivalence for :mod:`repro.incremental`.

The load-bearing contract: after *every* operation of a randomized
insert/delete stream, :class:`IncrementalSession` answers exactly what
a from-scratch ``solve()`` answers on the current database — equal
exact values (with a feasible minimum contingency set), identical
certified intervals in the bounded modes — in all three solving tiers,
serially and with ``workers=2``, with and without a persistent
``cache_dir``.  The streams mix NP-hard exact-dispatch queries with
bespoke/flow polynomial ones from the zoo, so every dispatch path is
exercised under updates.
"""

import pytest

from repro.core import ResilienceAnalyzer
from repro.db import Database, DBTuple
from repro.incremental import IncrementalSession, Update
from repro.query.parser import parse_query
from repro.query.zoo import ALL_QUERIES
from repro.resilience.exact import is_contingency_set
from repro.resilience.solver import solve
from repro.resilience.types import Budget, UnbreakableQueryError
from repro.workloads import apply_update, update_stream

# Zoo mix covering every dispatch kind: q_chain / q_sj1_rats are
# NP-complete (exact hitting-set path), q_ac_chain adds unary context,
# q_Aperm dispatches to a bespoke polynomial solver.
STREAM_QUERIES = ("q_chain", "q_ac_chain", "q_Aperm", "q_sj1_rats")


def _zoo(names):
    return [ALL_QUERIES[n] for n in names]


def _assert_matches_scratch(session, shadow, query, mode, budget=None):
    got = session.solve(query, mode=mode, budget=budget)
    want = solve(shadow, query, mode=mode, budget=budget)
    if mode == "exact":
        assert got.value == want.value, (query.name, got, want)
        if got.value:
            assert len(got.contingency_set) == got.value
            assert is_contingency_set(shadow, query, set(got.contingency_set))
    else:
        assert got.interval == want.interval, (query.name, got, want)


def _run_stream(
    n_ops,
    seed,
    mode,
    workers=None,
    cache_dir=None,
    queries=STREAM_QUERIES,
    budget=None,
    warm_start=True,
):
    queries = _zoo(queries)
    db, stream = update_stream(
        queries, n_ops=n_ops, seed=seed, domain_size=5, density=0.3
    )
    session = IncrementalSession(
        db, queries, workers=workers, cache_dir=cache_dir, warm_start=warm_start
    )
    shadow = db.copy()
    for update in stream:
        session.apply([update])
        apply_update(shadow, update)
        for query in queries:
            _assert_matches_scratch(session, shadow, query, mode, budget)
    assert session.stats.updates == len(stream)
    return session


class TestStreamEquivalence:
    """The acceptance streams: >= 200 ops, every op checked."""

    @pytest.mark.parametrize("mode", ["exact", "approx", "anytime"])
    def test_200_op_stream_matches_scratch_serial(self, mode):
        session = _run_stream(200, seed=11, mode=mode)
        if mode == "exact":
            # The delta laws must actually fire on a mixed stream.
            assert session.stats.warm_certified > 0

    @pytest.mark.parametrize("mode", ["exact", "approx", "anytime"])
    def test_200_op_stream_matches_scratch_two_workers(self, mode):
        _run_stream(200, seed=12, mode=mode, workers=2)

    def test_stream_matches_scratch_with_result_cache(self, tmp_path):
        first = _run_stream(60, seed=13, mode="exact", cache_dir=tmp_path)
        assert first.stats.components_solved > 0
        # A fresh session replaying the same stream hits the on-disk
        # per-component entries the first one wrote.
        second = _run_stream(
            60, seed=13, mode="exact", cache_dir=tmp_path, warm_start=False
        )
        assert second.stats.cache_hits > 0

    def test_stream_without_warm_start_still_matches(self):
        session = _run_stream(80, seed=14, mode="exact", warm_start=False)
        assert session.stats.warm_certified == 0

    def test_finite_anytime_budget_matches_scratch(self):
        # Node budgets are deterministic, so the session's budgeted
        # anytime answers must equal a fresh solve's exactly.
        _run_stream(
            60, seed=15, mode="anytime", budget=Budget(node_limit=40)
        )


class TestSessionSemantics:
    def _chain_session(self):
        db = Database()
        db.add_all("R", [(1, 2), (2, 3), (3, 3)])
        return IncrementalSession(db, ALL_QUERIES["q_chain"])

    def test_insert_existing_fact_is_noop(self):
        session = self._chain_session()
        before = session.solve().value
        session.insert("R", 1, 2)
        assert session.stats.updates == 0
        assert session.solve().value == before

    def test_delete_missing_fact_raises(self):
        session = self._chain_session()
        with pytest.raises(ValueError):
            session.delete("R", 9, 9)

    def test_delete_then_reinsert_roundtrips(self):
        session = self._chain_session()
        before = session.solve()
        session.delete("R", 3, 3)
        session.insert("R", 3, 3)
        after = session.solve()
        assert after.value == before.value

    def test_apply_batch_equals_single_ops(self):
        db = Database()
        db.add_all("R", [(1, 2), (2, 3)])
        q = ALL_QUERIES["q_chain"]
        batch = IncrementalSession(db, q)
        single = IncrementalSession(db, q)
        updates = [
            Update("insert", DBTuple("R", (3, 4))),
            Update("insert", DBTuple("R", (3, 3))),
            Update("delete", DBTuple("R", (1, 2))),
        ]
        assert batch.apply(updates) == 3
        for update in updates:
            single.apply([update])
            single.solve()
        assert batch.solve().value == single.solve().value

    def test_exogenous_deletes_are_database_updates(self):
        # q_cfp: R(x,y), H^x(x,z), R(z,y) — deleting the exogenous H
        # fact is a legal *update* (unlike contingency deletion) and
        # must destroy the witness.
        q = ALL_QUERIES["q_cfp"]
        db = Database()
        db.add("R", 1, 2)
        db.add("H", 1, 3)
        db.add("R", 3, 2)
        session = IncrementalSession(db, q)
        assert session.solve().value == solve(db, q).value == 1
        session.delete("H", 1, 3)
        assert session.solve().method == "unsatisfied"

    def test_unbreakable_raises_exactly_like_scratch(self):
        q = parse_query("R^x(x,y), S(y)")
        db = Database()
        db.declare("S", 1, exogenous=True)
        db.add("R", 1, 2)
        session = IncrementalSession(db, q)
        assert session.solve().method == "unsatisfied"
        session.insert("S", 2)
        with pytest.raises(UnbreakableQueryError):
            session.solve()
        with pytest.raises(UnbreakableQueryError):
            solve(session.database, q)
        session.delete("S", 2)
        assert session.solve().method == "unsatisfied"

    def test_warm_start_certifies_pure_inserts(self):
        # Gamma = {R(1,2)} hits the only witness {R(1,2), R(2,3)}.  The
        # witness created by inserting R(0,1) also uses R(1,2), so the
        # delta laws certify rho = 1 without any search; the witness
        # created by inserting R(3,4) avoids Gamma, forcing a re-solve
        # that the laws still bound to rho <= 2.
        db = Database()
        db.add_all("R", [(1, 2), (2, 3)])
        session = IncrementalSession(db, ALL_QUERIES["q_chain"])
        first = session.solve()
        assert first.value == 1
        session.insert("R", 0, 1)
        second = session.solve()
        assert second.method == "warm-start"
        assert second.value == 1
        assert session.stats.warm_certified == 1
        session.insert("R", 3, 4)
        third = session.solve()
        assert third.method != "warm-start"
        assert third.value == 2
        assert third.value == solve(session.database, ALL_QUERIES["q_chain"]).value

    def test_multi_query_session_and_solve_all(self):
        queries = _zoo(("q_chain", "q_Aperm"))
        db = Database()
        db.declare("A", 1)
        db.add_all("R", [(1, 2), (2, 1), (2, 3)])
        db.add("A", 1)
        session = IncrementalSession(db, queries)
        results = session.solve_all()
        assert [r.value for r in results] == [
            solve(db, q).value for q in queries
        ]
        with pytest.raises(KeyError):
            session.solve(ALL_QUERIES["q_perm"])

    def test_analyzer_session_entry_point(self):
        db = Database()
        db.add_all("R", [(1, 2), (2, 3), (3, 3)])
        analyzer = ResilienceAnalyzer("R(x,y), R(y,z)")
        session = analyzer.session(db)
        assert session.solve().value == analyzer.solve(db).value
        session.insert("R", 3, 4)
        current = session.database
        assert session.solve().value == analyzer.solve(current).value


class TestUpdateStreamGenerator:
    def test_streams_are_reproducible(self):
        queries = _zoo(("q_chain", "q_ac_chain"))
        db1, ops1 = update_stream(queries, n_ops=50, seed=7)
        db2, ops2 = update_stream(queries, n_ops=50, seed=7)
        assert db1 == db2
        assert ops1 == ops2
        db3, ops3 = update_stream(queries, n_ops=50, seed=8)
        assert ops3 != ops1

    def test_streams_apply_cleanly(self):
        queries = _zoo(("q_chain",))
        db, ops = update_stream(queries, n_ops=120, seed=9)
        for update in ops:
            apply_update(db, update)  # raises if a delete misses

    def test_insert_fraction_steers_drift(self):
        # domain_size=8 gives R 64 possible rows, enough headroom that
        # a 40-op stream at insert_fraction=0.9 never saturates.
        queries = _zoo(("q_chain",))
        _db, grow = update_stream(
            queries, n_ops=40, seed=4, insert_fraction=0.9, domain_size=8
        )
        inserts = sum(1 for u in grow if u.op == "insert")
        assert inserts > 30
