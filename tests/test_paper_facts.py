"""Section-by-section checks of concrete facts stated in the paper.

Every test here cites the paper location it reproduces.
"""

import pytest

from repro.db import Database, DBTuple
from repro.query import parse_query, satisfies, witnesses
from repro.query.zoo import (
    ALL_QUERIES,
    q_Aperm,
    q_chain,
    q_cfp,
    q_perm,
    q_sj1_rats,
    q_vc,
)
from repro.resilience import resilience_exact, solve
from repro.structure import Verdict, classify, normalize
from repro.workloads import random_database_for_query


class TestSection2:
    def test_witness_example(self, chain_db):
        """Section 2: qchain over {R(1,2), R(2,3), R(3,3)} has witnesses
        (1,2,3), (2,3,3), (3,3,3)."""
        ws = {tuple(w[v] for v in "xyz") for w in witnesses(chain_db, q_chain)}
        assert ws == {(1, 2, 3), (2, 3, 3), (3, 3, 3)}


class TestSection3:
    def test_example_11_domination_failure(self, example_11_db):
        """Example 11: with R endogenous the minimum contingency set is
        {R(1,2)} (size 1); making R exogenous forces {A(1), A(5)}."""
        assert resilience_exact(example_11_db, q_sj1_rats).value == 1
        frozen = example_11_db.copy()
        frozen.set_exogenous("R")
        assert resilience_exact(frozen, q_sj1_rats).value == 2

    def test_example_11_witnesses(self, example_11_db):
        """Example 11: the query has 3 witnesses: (1,2,3), (1,2,5), (5,1,2)."""
        ws = {tuple(w[v] for v in "xyz") for w in witnesses(example_11_db, q_sj1_rats)}
        assert ws == {(1, 2, 3), (1, 2, 5), (5, 1, 2)}


class TestSection7:
    def test_qperm_resilience_counts_witness_pairs(self):
        """Prop 33: for qperm each witness pair is disjoint from others."""
        db = Database()
        db.add_all("R", [(1, 2), (2, 1), (3, 4), (4, 3), (5, 5)])
        assert solve(db, q_perm).value == 3  # pairs {1,2}, {3,4}, loop {5}

    def test_cfp_equivalent_to_qvc(self):
        """Section 7.2: RES(cfp) == RES(qvc) — check on a mapped instance."""
        # graph: edges (1,2), (2,3); VC = 1 (vertex 2)
        db_vc = Database()
        db_vc.add_all("R", [1, 2, 3])
        db_vc.add_all("S", [(1, 2), (2, 3)])
        rho_vc = resilience_exact(db_vc, q_vc).value
        # cfp :- R(x,y), H^x(x,z), R(z,y): encode vertices as R(v, 0),
        # edges as H(u, v).
        db_cfp = Database()
        db_cfp.declare("H", 2, exogenous=True)
        for v in (1, 2, 3):
            db_cfp.add("R", v, 0)
        for (u, v) in [(1, 2), (2, 3)]:
            db_cfp.add("H", u, v)
        rho_cfp = resilience_exact(db_cfp, q_cfp).value
        assert rho_vc == rho_cfp == 1

    def test_rep_z3_off_diagonal_never_needed(self):
        """Prop 36's key observation on a concrete database."""
        from repro.query.zoo import q_z3

        db = Database()
        db.add_all("R", [(1, 1), (1, 2)])
        db.add_all("A", [1, 2])
        res = resilience_exact(db, q_z3)
        assert res.value == 1
        assert res.contingency_set == frozenset({DBTuple("R", (1, 1))})


class TestSection8:
    def test_ac3conf_vs_ts3conf(self):
        """Section 8.2: 'These queries are very similar but one of them is
        hard, while the other one is easy.'"""
        assert classify(ALL_QUERIES["q_AC3conf"]).verdict == Verdict.NPC
        assert classify(ALL_QUERIES["q_TS3conf"]).verdict == Verdict.P

    def test_sxy_variation_changes_complexity(self):
        """Section 8.4: qSwx3perm-R is in P but qSxy3perm-R is NP-complete —
        'surprising that such a small difference can change complexity'."""
        assert classify(ALL_QUERIES["q_Swx3perm_R"]).verdict == Verdict.P
        assert classify(ALL_QUERIES["q_Sxy3perm_R"]).verdict == Verdict.NPC

    def test_open_problems_reported_open(self):
        for name in ("q_AS3conf", "q_S3cc", "q_ASxy3perm_R", "q_SxyB3perm_R",
                     "q_SxyC3perm_R", "q_z6", "q_z7"):
            assert classify(ALL_QUERIES[name]).verdict == Verdict.OPEN, name


class TestSection5:
    def test_lemma_21_direction(self):
        """Self-join variations can only be harder: on lifted databases the
        resilience matches the sj-free source exactly (Lemma 21)."""
        from repro.query.zoo import q_triangle, q_triangle_sj3
        from repro.reductions.sj_variation import sj_variation_instance

        db = random_database_for_query(q_triangle, domain_size=3, density=0.6, seed=5)
        base = resilience_exact(db, q_triangle).value
        inst = sj_variation_instance(q_triangle, q_triangle_sj3, db, base)
        assert resilience_exact(inst.database, q_triangle_sj3).value == base

    def test_all_triangle_variations_hard(self):
        """Example 20 + Lemma 21: all self-join variations of q_triangle
        are NP-complete."""
        for name in ("q_triangle_sj1", "q_triangle_sj2", "q_triangle_sj3"):
            assert classify(ALL_QUERIES[name]).verdict == Verdict.NPC


class TestOpenConjectureTable:
    """The standing IJP sweep's open-query status table (docs/ijp.md).

    OPEN_QUERY_STATUS pins what the literal Definition 48 search finds
    on the paper's seven open queries.  The cheap ranges are re-swept
    live here; the B(9)-scale k=3 ranges are pinned by the committed
    E23 sweep and re-verified by ``bench_e23_ijp``.  The punchline
    extends the Reproduction finding: four of the seven open queries
    admit literal certificates, mostly with degenerate (reflexive)
    endpoints — exactly the shape that already "certifies" PTIME
    queries — so a literal Definition 48 pass resolves nothing until
    Conjecture 49 acquires gluing conditions.
    """

    def test_table_covers_exactly_the_open_queries(self):
        from repro.ijp.sweep import OPEN_QUERIES, OPEN_QUERY_STATUS
        from repro.query.zoo import PAPER_VERDICTS

        open_names = {n for n, v in PAPER_VERDICTS.items() if v == "OPEN"}
        assert set(OPEN_QUERIES) == open_names
        assert set(OPEN_QUERY_STATUS) == open_names
        for name, row in OPEN_QUERY_STATUS.items():
            assert row["variables"] == len(ALL_QUERIES[name].variables()), name
            assert row["proper"] <= row["certificates"], name
            if row["first_certificate_k"] is None:
                assert row["certificates"] == 0, name

    def test_s3cc_admits_literal_certificates_at_one_copy(self):
        """q_S3cc: the single-copy space (B(4) = 15) already contains 4
        literal Definition 48 certificates, 3 of them proper."""
        from repro.ijp.sweep import certificate_is_proper, sweep_range

        result = sweep_range(ALL_QUERIES["q_S3cc"], 1)
        assert result.stats.exhausted
        assert len(result.certificates) == 4
        assert sum(certificate_is_proper(c) for c in result.certificates) == 3

    def test_as3conf_first_certificates_at_two_copies(self):
        """q_AS3conf: empty at one copy, 72 certificate databases (16
        proper) among the B(8) = 4140 two-copy partitions."""
        from repro.ijp.sweep import certificate_is_proper, sweep_range

        q = ALL_QUERIES["q_AS3conf"]
        assert sweep_range(q, 1).certificates == []
        result = sweep_range(q, 2)
        assert result.stats.exhausted
        assert len(result.certificates) == 72
        assert sum(certificate_is_proper(c) for c in result.certificates) == 16

    def test_z7_stays_empty_through_three_copies(self):
        from repro.ijp.sweep import sweep_range

        q = ALL_QUERIES["q_z7"]
        for k in (1, 2, 3):
            result = sweep_range(q, k)
            assert result.stats.exhausted
            assert result.certificates == []

    def test_perm_families_empty_at_two_copies(self):
        """q_ASxy3perm_R / q_SxyB3perm_R: no literal certificate up to
        two copies (their k=3 emptiness is pinned by the E23 sweep)."""
        from repro.ijp.sweep import sweep_range

        for name in ("q_ASxy3perm_R", "q_SxyB3perm_R"):
            for k in (1, 2):
                assert sweep_range(ALL_QUERIES[name], k).certificates == []

    def test_deep_ranges_match_the_pinned_table(self):
        """The B(9)-scale findings recorded in OPEN_QUERY_STATUS:
        q_SxyC3perm_R first certifies at k=3 with a proper majority,
        q_z6 at k=3 with *only* degenerate certificates."""
        from repro.ijp.sweep import OPEN_QUERY_STATUS

        assert OPEN_QUERY_STATUS["q_SxyC3perm_R"] == {
            "variables": 3,
            "swept_copies": 3,
            "first_certificate_k": 3,
            "certificates": 84,
            "proper": 66,
        }
        assert OPEN_QUERY_STATUS["q_z6"] == {
            "variables": 3,
            "swept_copies": 3,
            "first_certificate_k": 3,
            "certificates": 90,
            "proper": 0,
        }

    def test_reproduction_finding_through_the_new_engine(self):
        """The PTIME query q_ACconf still admits (degenerate) literal
        certificates under the vectorized engine — the Reproduction
        finding survives the rewrite, and the classifier flags every
        such certificate as non-proper."""
        from repro.ijp.sweep import certificate_is_proper, sweep_range

        result = sweep_range(ALL_QUERIES["q_ACconf"], 2)
        assert result.certificates
        assert all(not certificate_is_proper(c) for c in result.certificates)


class TestTable1Annotations:
    """Table 1's query classes are well-defined on our zoo."""

    def test_ssj_binary_fragment(self):
        two_atom = ["q_chain", "q_perm", "q_Aperm", "q_ABperm", "q_ACconf"]
        for name in two_atom:
            q = ALL_QUERIES[name]
            assert q.is_binary() and q.is_single_self_join()
            rel = q.self_join_relation()
            assert len(q.occurrences(rel)) == 2

    def test_three_atom_fragment(self):
        for name in ("q_3chain", "q_AC3conf", "q_A3perm_R", "q_z5"):
            q = ALL_QUERIES[name]
            rel = q.self_join_relation()
            assert len(q.occurrences(rel)) == 3
