"""Section-by-section checks of concrete facts stated in the paper.

Every test here cites the paper location it reproduces.
"""

import pytest

from repro.db import Database, DBTuple
from repro.query import parse_query, satisfies, witnesses
from repro.query.zoo import (
    ALL_QUERIES,
    q_Aperm,
    q_chain,
    q_cfp,
    q_perm,
    q_sj1_rats,
    q_vc,
)
from repro.resilience import resilience_exact, solve
from repro.structure import Verdict, classify, normalize
from repro.workloads import random_database_for_query


class TestSection2:
    def test_witness_example(self, chain_db):
        """Section 2: qchain over {R(1,2), R(2,3), R(3,3)} has witnesses
        (1,2,3), (2,3,3), (3,3,3)."""
        ws = {tuple(w[v] for v in "xyz") for w in witnesses(chain_db, q_chain)}
        assert ws == {(1, 2, 3), (2, 3, 3), (3, 3, 3)}


class TestSection3:
    def test_example_11_domination_failure(self, example_11_db):
        """Example 11: with R endogenous the minimum contingency set is
        {R(1,2)} (size 1); making R exogenous forces {A(1), A(5)}."""
        assert resilience_exact(example_11_db, q_sj1_rats).value == 1
        frozen = example_11_db.copy()
        frozen.set_exogenous("R")
        assert resilience_exact(frozen, q_sj1_rats).value == 2

    def test_example_11_witnesses(self, example_11_db):
        """Example 11: the query has 3 witnesses: (1,2,3), (1,2,5), (5,1,2)."""
        ws = {tuple(w[v] for v in "xyz") for w in witnesses(example_11_db, q_sj1_rats)}
        assert ws == {(1, 2, 3), (1, 2, 5), (5, 1, 2)}


class TestSection7:
    def test_qperm_resilience_counts_witness_pairs(self):
        """Prop 33: for qperm each witness pair is disjoint from others."""
        db = Database()
        db.add_all("R", [(1, 2), (2, 1), (3, 4), (4, 3), (5, 5)])
        assert solve(db, q_perm).value == 3  # pairs {1,2}, {3,4}, loop {5}

    def test_cfp_equivalent_to_qvc(self):
        """Section 7.2: RES(cfp) == RES(qvc) — check on a mapped instance."""
        # graph: edges (1,2), (2,3); VC = 1 (vertex 2)
        db_vc = Database()
        db_vc.add_all("R", [1, 2, 3])
        db_vc.add_all("S", [(1, 2), (2, 3)])
        rho_vc = resilience_exact(db_vc, q_vc).value
        # cfp :- R(x,y), H^x(x,z), R(z,y): encode vertices as R(v, 0),
        # edges as H(u, v).
        db_cfp = Database()
        db_cfp.declare("H", 2, exogenous=True)
        for v in (1, 2, 3):
            db_cfp.add("R", v, 0)
        for (u, v) in [(1, 2), (2, 3)]:
            db_cfp.add("H", u, v)
        rho_cfp = resilience_exact(db_cfp, q_cfp).value
        assert rho_vc == rho_cfp == 1

    def test_rep_z3_off_diagonal_never_needed(self):
        """Prop 36's key observation on a concrete database."""
        from repro.query.zoo import q_z3

        db = Database()
        db.add_all("R", [(1, 1), (1, 2)])
        db.add_all("A", [1, 2])
        res = resilience_exact(db, q_z3)
        assert res.value == 1
        assert res.contingency_set == frozenset({DBTuple("R", (1, 1))})


class TestSection8:
    def test_ac3conf_vs_ts3conf(self):
        """Section 8.2: 'These queries are very similar but one of them is
        hard, while the other one is easy.'"""
        assert classify(ALL_QUERIES["q_AC3conf"]).verdict == Verdict.NPC
        assert classify(ALL_QUERIES["q_TS3conf"]).verdict == Verdict.P

    def test_sxy_variation_changes_complexity(self):
        """Section 8.4: qSwx3perm-R is in P but qSxy3perm-R is NP-complete —
        'surprising that such a small difference can change complexity'."""
        assert classify(ALL_QUERIES["q_Swx3perm_R"]).verdict == Verdict.P
        assert classify(ALL_QUERIES["q_Sxy3perm_R"]).verdict == Verdict.NPC

    def test_open_problems_reported_open(self):
        for name in ("q_AS3conf", "q_S3cc", "q_ASxy3perm_R", "q_SxyB3perm_R",
                     "q_SxyC3perm_R", "q_z6", "q_z7"):
            assert classify(ALL_QUERIES[name]).verdict == Verdict.OPEN, name


class TestSection5:
    def test_lemma_21_direction(self):
        """Self-join variations can only be harder: on lifted databases the
        resilience matches the sj-free source exactly (Lemma 21)."""
        from repro.query.zoo import q_triangle, q_triangle_sj3
        from repro.reductions.sj_variation import sj_variation_instance

        db = random_database_for_query(q_triangle, domain_size=3, density=0.6, seed=5)
        base = resilience_exact(db, q_triangle).value
        inst = sj_variation_instance(q_triangle, q_triangle_sj3, db, base)
        assert resilience_exact(inst.database, q_triangle_sj3).value == base

    def test_all_triangle_variations_hard(self):
        """Example 20 + Lemma 21: all self-join variations of q_triangle
        are NP-complete."""
        for name in ("q_triangle_sj1", "q_triangle_sj2", "q_triangle_sj3"):
            assert classify(ALL_QUERIES[name]).verdict == Verdict.NPC


class TestTable1Annotations:
    """Table 1's query classes are well-defined on our zoo."""

    def test_ssj_binary_fragment(self):
        two_atom = ["q_chain", "q_perm", "q_Aperm", "q_ABperm", "q_ACconf"]
        for name in two_atom:
            q = ALL_QUERIES[name]
            assert q.is_binary() and q.is_single_self_join()
            rel = q.self_join_relation()
            assert len(q.occurrences(rel)) == 2

    def test_three_atom_fragment(self):
        for name in ("q_3chain", "q_AC3conf", "q_A3perm_R", "q_z5"):
            q = ALL_QUERIES[name]
            rel = q.self_join_relation()
            assert len(q.occurrences(rel)) == 3
