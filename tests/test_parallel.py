"""Tests for parallel sharded batch execution and the result cache.

The contract under test (docs/parallelism.md): ``solve_batch`` with any
worker count returns exactly the serial results — values, contingency
sets, methods, and every ``BatchStats`` counter — and the persistent
``ResultCache`` round-trips results across invocations, surviving
corrupted entries.
"""

import os
import pickle

import pytest

from repro.core import solve_batch
from repro.core.analyzer import ResilienceAnalyzer
from repro.db import Database, DBTuple
from repro.parallel import (
    ComponentTask,
    PairTask,
    Shard,
    build_shards,
    group_by_database,
)
from repro.query.zoo import ALL_QUERIES
from repro.resilience.types import Budget
from repro.witness import (
    ResultCache,
    clear_witness_cache,
    pair_cache_key,
)
from repro.workloads import (
    large_random_database,
    random_database_for_queries,
)

# The parallel worker count exercised by this suite; the CI matrix leg
# raises it via REPRO_TEST_WORKERS.
WORKERS = max(2, int(os.environ.get("REPRO_TEST_WORKERS", "2")))

SHARED_VOCAB_QUERIES = (
    "q_chain",
    "q_conf",
    "q_perm",
    "q_Aperm",
    "q_ACconf",
    "q_z3",
    "q_sj1_rats",
    "q_a_chain",
)


def _shared_workload(n_dbs, domain_size=4, density=0.45):
    queries = [ALL_QUERIES[n] for n in SHARED_VOCAB_QUERIES]
    dbs = [
        random_database_for_queries(
            queries, domain_size=domain_size, density=density, seed=seed
        )
        for seed in range(n_dbs)
    ]
    return [(db, q) for db in dbs for q in queries]


def _assert_batches_identical(a, b, compare_shard_fields=False):
    """Results and every reproducible BatchStats counter must match."""
    assert a.values() == b.values()
    assert [r.contingency_set for r in a] == [r.contingency_set for r in b]
    assert [r.method for r in a] == [r.method for r in b]
    sa, sb = a.stats, b.stats
    assert sa.pairs == sb.pairs
    assert sa.unique_pairs == sb.unique_pairs
    assert sa.methods == sb.methods
    assert sa.structures == sb.structures
    assert sa.intervals_exact == sb.intervals_exact
    assert sa.gap_total == sb.gap_total
    ra, rb = sa.reductions, sb.reductions
    for field in (
        "witnesses_raw",
        "witnesses_distinct",
        "witnesses_minimal",
        "witnesses_final",
        "tuples_raw",
        "tuples_final",
        "forced_tuples",
        "dominated_tuples",
        "components",
        "rounds",
    ):
        assert getattr(ra, field) == getattr(rb, field), field
    if compare_shard_fields:
        assert sa.shards == sb.shards
        assert sa.workers == sb.workers


class TestPickling:
    def test_dbtuple_round_trips(self):
        t = DBTuple("R", (1, ("composite", 2)))
        t2 = pickle.loads(pickle.dumps(t))
        assert t2 == t and hash(t2) == hash(t)

    def test_database_round_trips(self):
        db = Database()
        db.add_all("R", [(1, 2), (2, 3)])
        db.declare("A", 1, exogenous=True)
        db.add("A", 1)
        db2 = pickle.loads(pickle.dumps(db))
        assert db2 == db
        assert db2.relations["A"].exogenous


class TestSerialParallelEquivalence:
    def test_200_randomized_pairs_exact(self):
        """Acceptance: >= 200 randomized pairs, parallel == serial."""
        pairs = _shared_workload(25)
        assert len(pairs) == 200
        clear_witness_cache()
        serial = solve_batch(pairs, workers=1)
        clear_witness_cache()
        parallel = solve_batch(pairs, workers=WORKERS)
        _assert_batches_identical(serial, parallel)
        assert parallel.stats.workers == WORKERS
        assert parallel.stats.shards >= 1

    @pytest.mark.parametrize("mode", ["approx", "anytime"])
    def test_bounded_modes_match_serial(self, mode):
        # A node budget (not a wall-clock one) keeps anytime runs
        # deterministic, so serial and parallel must agree exactly.
        budget = Budget(node_limit=50) if mode == "anytime" else None
        pairs = _shared_workload(6)
        clear_witness_cache()
        serial = solve_batch(pairs, mode=mode, budget=budget, workers=1)
        clear_witness_cache()
        parallel = solve_batch(pairs, mode=mode, budget=budget, workers=WORKERS)
        assert serial.intervals() == parallel.intervals()
        _assert_batches_identical(serial, parallel)

    def test_component_sharding_matches_serial(self):
        """Large exact instances split per component, same answers."""
        vocab = [ALL_QUERIES[n] for n in ("q_chain", "q_a_chain", "q_ac_chain")]
        q = ALL_QUERIES["q_ac_chain"]
        pairs = [
            (large_random_database(vocab, n_tuples=250, seed=s), q)
            for s in (0, 1)
        ]
        clear_witness_cache()
        serial = solve_batch(pairs, workers=1)
        clear_witness_cache()
        # split_components=0: every exact instance goes component-granular.
        parallel = solve_batch(pairs, workers=WORKERS, split_components=0)
        _assert_batches_identical(serial, parallel)

    def test_workers_1_is_the_serial_fast_path(self, monkeypatch):
        # Pin the env-driven default to serial: under the CI parallel
        # leg (REPRO_TEST_WORKERS -> REPRO_WORKERS) the bare call would
        # otherwise run on the pool by design.
        monkeypatch.delenv("REPRO_WORKERS", raising=False)
        pairs = _shared_workload(3)
        clear_witness_cache()
        default = solve_batch(pairs)
        clear_witness_cache()
        explicit = solve_batch(pairs, workers=1)
        _assert_batches_identical(default, explicit, compare_shard_fields=True)
        assert explicit.stats.workers == 1
        assert explicit.stats.shards == 0  # no pool, no shards

    def test_method_forcing_in_parallel(self):
        pairs = _shared_workload(3)
        clear_witness_cache()
        serial = solve_batch(pairs, method="exact", workers=1)
        clear_witness_cache()
        parallel = solve_batch(pairs, method="exact", workers=WORKERS)
        _assert_batches_identical(serial, parallel)

    def test_duplicate_and_content_equal_pairs_dedupe(self):
        """Content-equal databases are one unit — the counter fix that
        makes stats worker-count-invariant."""
        q = ALL_QUERIES["q_chain"]
        db1 = Database()
        db1.add_all("R", [(1, 2), (2, 3), (3, 3)])
        db2 = Database()
        db2.add_all("R", [(1, 2), (2, 3), (3, 3)])
        assert db1 is not db2 and db1 == db2
        batch = solve_batch([(db1, q), (db2, q), (db1, q)], workers=WORKERS)
        assert batch.stats.pairs == 3
        assert batch.stats.unique_pairs == 1
        assert len({id(r) for r in batch}) == 1

    def test_analyzer_solve_many(self):
        q = ALL_QUERIES["q_chain"]
        queries = [ALL_QUERIES[n] for n in SHARED_VOCAB_QUERIES]
        dbs = [
            random_database_for_queries(queries, domain_size=4, seed=s)
            for s in range(4)
        ]
        analyzer = ResilienceAnalyzer(q)
        batch = analyzer.solve_many(dbs, workers=WORKERS)
        assert batch.values() == [analyzer.solve(db).value for db in dbs]


class TestResultCache:
    def _pairs(self):
        return _shared_workload(4)

    def test_cold_then_warm_round_trip(self, tmp_path):
        pairs = self._pairs()
        clear_witness_cache()
        cold = solve_batch(pairs, cache_dir=tmp_path)
        assert cold.stats.cache_hits == 0
        assert cold.stats.cache_misses == cold.stats.unique_pairs
        clear_witness_cache()
        warm = solve_batch(pairs, cache_dir=tmp_path)
        assert warm.stats.cache_hits == warm.stats.unique_pairs
        assert warm.stats.cache_misses == 0
        assert warm.stats.structures == 0  # nothing rebuilt
        assert cold.values() == warm.values()
        assert [r.contingency_set for r in cold] == [
            r.contingency_set for r in warm
        ]

    def test_warm_parallel_run_matches(self, tmp_path):
        pairs = self._pairs()
        clear_witness_cache()
        cold = solve_batch(pairs, cache_dir=tmp_path, workers=WORKERS)
        clear_witness_cache()
        warm = solve_batch(pairs, cache_dir=tmp_path, workers=WORKERS)
        assert warm.stats.cache_hits == warm.stats.unique_pairs
        assert cold.values() == warm.values()

    def test_key_separates_modes_and_budgets(self):
        (db, q) = self._pairs()[0]
        base = pair_cache_key(db, q)
        assert base == pair_cache_key(db, q)  # deterministic
        assert base != pair_cache_key(db, q, mode="approx")
        assert base != pair_cache_key(db, q, method="exact")
        assert pair_cache_key(
            db, q, mode="anytime", budget=Budget(node_limit=10)
        ) != pair_cache_key(db, q, mode="anytime", budget=Budget(node_limit=20))
        # Bare-number budgets normalize like the solvers normalize them:
        # seconds == Budget(time_limit=seconds), distinct from unlimited.
        assert pair_cache_key(
            db, q, mode="anytime", budget=2.5
        ) == pair_cache_key(db, q, mode="anytime", budget=Budget(time_limit=2.5))
        assert pair_cache_key(db, q, mode="anytime", budget=2.5) != pair_cache_key(
            db, q, mode="anytime"
        )

    def test_key_tracks_content(self):
        q = ALL_QUERIES["q_chain"]
        db = Database()
        db.add_all("R", [(1, 2), (2, 3)])
        before = pair_cache_key(db, q)
        db.add("R", 3, 3)
        assert pair_cache_key(db, q) != before
        # equal contents => equal keys, even for distinct objects
        twin = Database()
        twin.add_all("R", [(1, 2), (2, 3), (3, 3)])
        assert pair_cache_key(twin, q) == pair_cache_key(db, q)

    def test_corrupted_entry_recovers(self, tmp_path):
        pairs = self._pairs()
        clear_witness_cache()
        cold = solve_batch(pairs, cache_dir=tmp_path)
        entries = sorted(tmp_path.glob("*.pkl"))
        assert len(entries) == cold.stats.unique_pairs
        # Corrupt one entry with garbage and truncate another.
        entries[0].write_bytes(b"not a pickle at all")
        entries[1].write_bytes(entries[1].read_bytes()[:7])
        clear_witness_cache()
        recovered = solve_batch(pairs, cache_dir=tmp_path)
        assert recovered.stats.cache_misses == 2
        assert recovered.stats.cache_hits == recovered.stats.unique_pairs - 2
        assert recovered.values() == cold.values()
        # The bad entries were rewritten: a third run is all hits.
        clear_witness_cache()
        healed = solve_batch(pairs, cache_dir=tmp_path)
        assert healed.stats.cache_hits == healed.stats.unique_pairs

    def test_mismatched_key_payload_is_rejected(self, tmp_path):
        """An entry whose embedded key disagrees with its filename is a
        miss (guards against files copied between stores)."""
        cache = ResultCache(tmp_path)
        cache.put("a" * 64, ("whatever",))
        wrong = cache.cache_dir / ("b" * 64 + ".pkl")
        (cache.cache_dir / ("a" * 64 + ".pkl")).rename(wrong)
        assert cache.get("b" * 64) is None
        assert not wrong.exists()  # evicted
        assert cache.info()[:2] == (0, 1)


class TestSharding:
    def test_deterministic_and_balanced(self):
        q = ALL_QUERIES["q_chain"]
        dbs = []
        for size in (8, 1, 5, 3, 2, 7):
            db = Database()
            db.add_all("R", [(i, i + 1) for i in range(size)])
            dbs.append(db)
        tasks = [PairTask(i, db, q) for i, db in enumerate(dbs)]
        shards = build_shards(group_by_database(tasks), 3)
        again = build_shards(group_by_database(tasks), 3)
        assert shards == again
        assert sorted(t.task_id for s in shards for t in s.tasks) == list(
            range(len(tasks))
        )
        loads = sorted(s.cost_estimate for s in shards)
        assert loads[-1] <= loads[0] + 8  # LPT keeps the spread bounded

    def test_database_affinity_when_balance_allows(self):
        """Each database's tasks stay together when shards can still
        balance (index sharing)."""
        q1, q2 = ALL_QUERIES["q_chain"], ALL_QUERIES["q_conf"]
        dbs = []
        for offset in (0, 10):
            db = Database()
            db.add_all("R", [(offset + 1, offset + 2), (offset + 2, offset + 3)])
            dbs.append(db)
        tasks = [
            PairTask(i * 2 + j, db, q)
            for i, db in enumerate(dbs)
            for j, q in enumerate((q1, q2))
        ]
        shards = build_shards(group_by_database(tasks), 2)
        assert len(shards) == 2
        for shard in shards:
            assert len({id(t.database) for t in shard.tasks}) == 1

    def test_one_hot_database_still_fans_out(self):
        """A single shared database must not serialize the batch: its
        group is split once it exceeds an even share."""
        q1, q2 = ALL_QUERIES["q_chain"], ALL_QUERIES["q_conf"]
        db = Database()
        db.add_all("R", [(i, i + 1) for i in range(6)])
        tasks = [PairTask(i, db, q1 if i % 2 else q2) for i in range(8)]
        shards = build_shards(group_by_database(tasks), 4)
        assert len(shards) == 4
        assert build_shards(group_by_database(tasks), 4) == shards
        assert sorted(t.task_id for s in shards for t in s.tasks) == list(
            range(8)
        )

    def test_many_queries_one_database_matches_serial(self):
        queries = [ALL_QUERIES[n] for n in SHARED_VOCAB_QUERIES]
        db = random_database_for_queries(queries, domain_size=4, seed=7)
        pairs = [(db, q) for q in queries]
        clear_witness_cache()
        serial = solve_batch(pairs, workers=1)
        clear_witness_cache()
        parallel = solve_batch(pairs, workers=WORKERS)
        _assert_batches_identical(serial, parallel)
        assert parallel.stats.shards > 1  # the hot database was split

    def test_component_tasks_are_singleton_groups(self):
        tasks = [
            ComponentTask(0, (0, 1), (frozenset({0, 1}),)),
            ComponentTask(1, (2, 3), (frozenset({2, 3}),)),
        ]
        groups = group_by_database(tasks)
        assert [len(g) for g in groups] == [1, 1]
        shards = build_shards(groups, 2)
        assert len(shards) == 2

    def test_empty_and_invalid(self):
        assert build_shards([], 4) == []
        with pytest.raises(ValueError):
            build_shards([], 0)
        assert isinstance(
            Shard(0, ()), Shard
        )  # empty shard object is constructible


class TestEnvDefault:
    def test_repro_workers_env_sets_default(self, monkeypatch):
        from repro.core.analyzer import _default_workers

        monkeypatch.delenv("REPRO_WORKERS", raising=False)
        assert _default_workers() == 1
        monkeypatch.setenv("REPRO_WORKERS", "3")
        assert _default_workers() == 3
        monkeypatch.setenv("REPRO_WORKERS", "junk")
        assert _default_workers() == 1
