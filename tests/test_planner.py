"""Differential and property tests for the cost-based backend planner.

The planner (:mod:`repro.planner`) chooses a join backend, kernel
backend, flow backend, exact solver, and sharding strategy per
instance.  Its load-bearing contract is **output-invisibility**: any
plan it can emit must produce the same answers as the forced-backend
reference paths — backend choice may move *time*, never *values,
certificates, or intervals*.  This module pins that contract three
ways:

* a ~200-instance differential matrix (8 query families x seeds, unit
  and skewed costs, all three solving tiers) comparing the planner's
  answer against **every** forced backend combination it could have
  picked — value and interval equality for all combinations (distinct
  backends may witness distinct optimal sets), full bit-identity
  against the combination the plan actually chose;
* hypothesis property suites for feature extraction — purity,
  invariance under active-domain renaming and declaration order
  (the machinery of ``tests/test_properties.py``), and monotonicity
  of the size features under endogenous insertion;
* determinism pins: plans are pure functions of instance content and
  model (repeated calls agree; ``workers=1`` and ``workers=2`` batches
  record identical plan histograms and bit-identical results).

It also covers the satellite contracts: admission control and the
planner share one size feature (a rerouted request is exactly a
planner-"large" instance), ``repro planner calibrate`` round-trips
through JSON reproducing identical plans, and a corrupted or missing
``REPRO_PLANNER_MODEL`` degrades to the static default table with a
``UserWarning`` — never a failed solve.

Effort (``max_examples``) comes from the hypothesis profile registered
in ``conftest.py``; do not pin ``max_examples`` here.
"""

import itertools
import json
from pathlib import Path

import hypothesis.strategies as st
import pytest
from hypothesis import HealthCheck, given, settings

from repro.core import solve_batch
from repro.db import Database
from repro.planner import (
    DEFAULT_MAX_EXACT_TUPLES,
    DEFAULT_MODEL,
    WITNESS_ESTIMATE_CAP,
    CostModel,
    Plan,
    active_model,
    calibrate,
    clear_model_cache,
    extract_features,
    is_large_instance,
    load_model,
    plan_instance,
    planner_enabled,
    use_plan,
)
from repro.query.zoo import ALL_QUERIES, q_chain, q_a_chain
from repro.resilience.exact import effective_backend, solver_backend_override
from repro.resilience.solver import solve
from repro.resilience.types import Budget
from repro.witness import clear_witness_cache, witness_structure
from repro.workloads import assign_skewed_costs, random_database_for_queries

SETTINGS = settings(
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

REPO_ROOT = Path(__file__).resolve().parent.parent

# ---------------------------------------------------------------------------
# The differential matrix
# ---------------------------------------------------------------------------

# Eight query families spanning the dichotomy: NP-hard self-join
# queries (chain, a_chain, sj1_rats, 3chain), flow-handled PTIME
# queries (conf, perm, Aperm), and the linear q_lin with a ternary
# relation.  Each family gets its own compatible random database.
FAMILIES = (
    "q_chain",
    "q_a_chain",
    "q_sj1_rats",
    "q_conf",
    "q_3chain",
    "q_perm",
    "q_Aperm",
    "q_lin",
)
SEEDS = range(13)
MODES = ("exact", "approx", "anytime")

# Every backend combination the planner could have picked: the full
# cross product of the two-way choices at each layer.
FORCED_COMBOS = tuple(
    itertools.product(
        ("columnar", "reference"),  # join
        ("bitset", "reference"),    # kernel
        ("csgraph", "networkx"),    # flow
        ("bnb", "ilp"),             # solver
    )
)

# Deterministic anytime budget: node limits are exact replay, wall
# clocks are not.
ANYTIME_BUDGET = Budget(node_limit=64)


def _instance(family, seed, skewed):
    """One matrix instance: a random database for the family's query."""
    query = ALL_QUERIES[family]
    db = random_database_for_queries(
        [query], domain_size=5, density=0.4, seed=1000 * skewed + seed
    )
    if skewed:
        assign_skewed_costs(db, seed=seed + 1)
    return db, query


def _mode_of(family, seed, skewed):
    """Deterministic mode assignment covering all (family, mode) cells."""
    return MODES[(FAMILIES.index(family) + seed + skewed) % len(MODES)]


def _force(monkeypatch, join, kernel, flow, solver_backend):
    """Force one backend combination and disable the planner."""
    monkeypatch.setenv("REPRO_PLANNER", "off")
    monkeypatch.setenv("REPRO_JOIN_BACKEND", join)
    # The env join backend keeps its own size gate; forcing columnar
    # means dropping that gate too.
    monkeypatch.setenv("REPRO_COLUMNAR_MIN_TUPLES", "0")
    monkeypatch.setenv("REPRO_KERNEL_BACKEND", kernel)
    monkeypatch.setenv("REPRO_FLOW_BACKEND", flow)
    monkeypatch.setenv("REPRO_SOLVER_BACKEND", solver_backend)


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("family", FAMILIES)
class TestDifferentialMatrix:
    """Planner answers == forced-backend answers, instance by instance."""

    @pytest.mark.parametrize("skewed", (0, 1), ids=("unit", "skewed"))
    def test_planner_matches_every_forced_combination(
        self, family, seed, skewed, monkeypatch
    ):
        db, query = _instance(family, seed, skewed)
        mode = _mode_of(family, seed, skewed)
        weighted = bool(skewed)
        budget = ANYTIME_BUDGET if mode == "anytime" else None

        monkeypatch.setenv("REPRO_PLANNER", "on")
        clear_witness_cache()
        planned = solve(db, query, mode=mode, budget=budget, weighted=weighted)
        # The cache is now warm, so this plan sees the kernelized shape
        # and pins the exact solver the planned run resolved to.
        plan = plan_instance(
            db, query, mode=mode, budget=budget, weighted=weighted
        )
        chosen = (plan.join, plan.kernel, plan.flow, plan.solver)

        for combo in FORCED_COMBOS:
            with monkeypatch.context() as forced_env:
                _force(forced_env, *combo)
                clear_witness_cache()
                forced = solve(
                    db, query, mode=mode, budget=budget, weighted=weighted
                )
            # Output-invisibility: every combination returns the same
            # value, and in bounded modes the same certified interval.
            assert forced.value == planned.value, (combo, plan.signature())
            if mode != "exact":
                assert forced.interval == planned.interval, (
                    combo,
                    plan.signature(),
                )
            if combo == chosen:
                # The planner's own answer is bit-identical to forcing
                # the combination it picked: same value, same witness
                # set, same method string.
                assert forced == planned, plan.signature()

    def test_plans_deterministic_across_repeated_calls(self, family, seed):
        db, query = _instance(family, seed, skewed=0)
        mode = _mode_of(family, seed, 0)
        clear_witness_cache()
        cold_a = plan_instance(db, query, mode=mode)
        cold_b = plan_instance(db, query, mode=mode)
        assert cold_a == cold_b
        solve(db, query, mode=mode, budget=ANYTIME_BUDGET if mode == "anytime" else None)
        warm_a = plan_instance(db, query, mode=mode)
        warm_b = plan_instance(db, query, mode=mode)
        assert warm_a == warm_b
        # Warmth may refine the solver choice but never flips a
        # non-"auto" decision the cold plan already made.
        assert (cold_a.join, cold_a.kernel, cold_a.flow, cold_a.split) == (
            warm_a.join,
            warm_a.kernel,
            warm_a.flow,
            warm_a.split,
        )


class TestBatchPlanDeterminism:
    """solve_batch records the same plans at workers=1 and workers=2."""

    def _mixed_batch(self):
        pairs = []
        for i, family in enumerate(FAMILIES):
            db, query = _instance(family, seed=17 + i, skewed=i % 2)
            pairs.append((db, query))
        return pairs

    def test_workers_1_and_2_agree_bit_identically(self):
        pairs = self._mixed_batch()
        clear_witness_cache()
        serial = solve_batch(pairs, workers=1, planner=True)
        clear_witness_cache()
        parallel = solve_batch(pairs, workers=2, planner=True)
        assert list(serial.results) == list(parallel.results)
        assert dict(serial.stats.plans) == dict(parallel.stats.plans)
        assert sum(serial.stats.plans.values()) == len(pairs)

    def test_plans_surface_in_batch_summary(self):
        pairs = self._mixed_batch()
        clear_witness_cache()
        batch = solve_batch(pairs, workers=1, planner=True)
        assert any(
            line.startswith("plans: ") for line in batch.stats.summary_lines()
        )

    def test_planner_off_records_no_plans_and_same_values(self):
        pairs = self._mixed_batch()
        clear_witness_cache()
        on = solve_batch(pairs, workers=1, planner=True)
        clear_witness_cache()
        off = solve_batch(pairs, workers=1, planner=False)
        assert on.values() == off.values()
        assert dict(off.stats.plans) == {}


# ---------------------------------------------------------------------------
# Feature-extraction properties (hypothesis)
# ---------------------------------------------------------------------------

edges = st.lists(
    st.tuples(st.integers(0, 4), st.integers(0, 4)),
    min_size=0,
    max_size=12,
    unique=True,
)
nodes = st.lists(st.integers(0, 4), min_size=0, max_size=5, unique=True)


def chain_db(edge_list):
    db = Database()
    db.declare("R", 2)
    for (u, v) in edge_list:
        db.add("R", u, v)
    return db


class TestFeatureProperties:
    @given(edges)
    @SETTINGS
    def test_features_are_pure(self, edge_list):
        """Same pair, same cache state -> the very same features."""
        db = chain_db(edge_list)
        assert extract_features(db, q_chain) == extract_features(db, q_chain)

    @given(edges)
    @SETTINGS
    def test_plans_are_pure(self, edge_list):
        db = chain_db(edge_list)
        assert plan_instance(db, q_chain) == plan_instance(db, q_chain)

    @given(edges)
    @SETTINGS
    def test_features_invariant_under_domain_renaming(self, edge_list):
        db = chain_db(edge_list)
        renamed = Database()
        renamed.declare("R", 2)
        for (u, v) in edge_list:
            renamed.add("R", f"n{u}", f"n{v}")  # injective renaming
        clear_witness_cache()
        before = extract_features(db, q_chain)
        after = extract_features(renamed, q_chain)
        assert before == after
        assert plan_instance(db, q_chain).signature() == plan_instance(
            renamed, q_chain
        ).signature()

    @given(edges, nodes)
    @SETTINGS
    def test_features_invariant_under_declaration_and_insertion_order(
        self, edge_list, a_nodes
    ):
        forward = Database()
        forward.declare("A", 1)
        forward.declare("R", 2)
        for (u, v) in edge_list:
            forward.add("R", u, v)
        for a in a_nodes:
            forward.add("A", a)
        backward = Database()
        for a in reversed(a_nodes):
            backward.add("A", a)
        backward.declare("R", 2)
        for (u, v) in reversed(edge_list):
            backward.add("R", u, v)
        backward.declare("A", 1)
        clear_witness_cache()
        assert extract_features(forward, q_a_chain) == extract_features(
            backward, q_a_chain
        )

    @given(edges, st.tuples(st.integers(0, 4), st.integers(0, 4)))
    @SETTINGS
    def test_size_features_monotone_under_endogenous_insert(
        self, edge_list, extra
    ):
        db = chain_db(edge_list)
        before = extract_features(db, q_chain)
        db.add("R", *extra)
        after = extract_features(db, q_chain)
        assert after.total_tuples >= before.total_tuples
        assert after.endogenous_tuples >= before.endogenous_tuples
        assert after.witness_estimate >= before.witness_estimate

    @given(edges)
    @SETTINGS
    def test_witness_estimate_bounds(self, edge_list):
        db = chain_db(edge_list)
        features = extract_features(db, q_chain)
        # q_chain has two R atoms: the estimate is |R|^2, capped.
        assert features.witness_estimate == min(
            len(edge_list) ** 2, WITNESS_ESTIMATE_CAP
        )

    def test_kernel_features_appear_only_with_a_cached_structure(self):
        db, query = _instance("q_chain", seed=5, skewed=0)
        clear_witness_cache()
        cold = extract_features(db, query)
        assert cold.kernel_components is None
        assert cold.kernel_size is None
        ws = witness_structure(db, query)
        warm = extract_features(db, query)
        assert warm.kernel_components == len(ws.components)
        assert warm.kernel_tuples == ws.stats.tuples_final
        assert warm.kernel_size is not None

    def test_cache_peek_does_not_disturb_cache_telemetry(self):
        from repro.witness import witness_cache_info

        db, query = _instance("q_chain", seed=6, skewed=0)
        clear_witness_cache()
        before = witness_cache_info()
        extract_features(db, query)
        assert witness_cache_info() == before


# ---------------------------------------------------------------------------
# Precedence: explicit kwarg > env var > plan > static default
# ---------------------------------------------------------------------------

class TestPrecedence:
    def test_env_var_beats_plan_for_the_solver(self, monkeypatch):
        db, query = _instance("q_chain", seed=0, skewed=0)
        ws = witness_structure(db, query)
        plan = plan_instance(db, query)
        pinned = Plan(
            join=plan.join,
            kernel=plan.kernel,
            flow=plan.flow,
            solver="ilp",
            split=plan.split,
            size_class=plan.size_class,
            model_version=plan.model_version,
            features=plan.features,
        )
        with use_plan(pinned):
            assert effective_backend(ws) == "ilp"
            monkeypatch.setenv("REPRO_SOLVER_BACKEND", "bnb")
            assert effective_backend(ws) == "bnb"

    def test_invalid_solver_backend_env_raises(self, monkeypatch):
        monkeypatch.setenv("REPRO_SOLVER_BACKEND", "simplex")
        with pytest.raises(ValueError, match="REPRO_SOLVER_BACKEND"):
            solver_backend_override()

    def test_planner_enabled_precedence_and_validation(self, monkeypatch):
        monkeypatch.delenv("REPRO_PLANNER", raising=False)
        assert planner_enabled(None) is True  # default on
        monkeypatch.setenv("REPRO_PLANNER", "off")
        assert planner_enabled(None) is False
        assert planner_enabled(True) is True  # explicit beats env
        monkeypatch.setenv("REPRO_PLANNER", "maybe")
        with pytest.raises(ValueError, match="REPRO_PLANNER"):
            planner_enabled(None)

    def test_explicit_method_kwarg_beats_everything(self, monkeypatch):
        """method='exact' forces the hitting-set path even for a
        PTIME-dispatched query — planner on or off."""
        db, query = _instance("q_perm", seed=1, skewed=0)
        for planner_env in ("on", "off"):
            monkeypatch.setenv("REPRO_PLANNER", planner_env)
            clear_witness_cache()
            result = solve(db, query, method="exact")
            assert result.method in ("branch-and-bound", "ilp")


# ---------------------------------------------------------------------------
# Admission control and the planner share one size gate
# ---------------------------------------------------------------------------

class TestAdmissionPlannerConsistency:
    def _oversized_db(self):
        db = Database()
        db.declare("R", 2)
        for i in range(DEFAULT_MAX_EXACT_TUPLES + 100):
            db.add("R", i, i + 1)
        return db

    def test_rerouted_request_is_exactly_a_planner_large_instance(self):
        from repro.serving.admission import AdmissionPolicy
        from repro.serving.wire import SolveRequest

        policy = AdmissionPolicy()
        db = self._oversized_db()
        request = SolveRequest(db, q_chain, mode="exact")
        decision = policy.admit(request, active_solves=0)
        assert decision.accepted and decision.rerouted
        assert decision.mode == "anytime"
        # The same feature, the same threshold, the same verdict.
        features = policy.features(request)
        assert is_large_instance(features)
        assert plan_instance(db, q_chain).size_class == "large"

    def test_small_request_is_interactive_and_planner_small(self):
        from repro.serving.admission import AdmissionPolicy
        from repro.serving.wire import SolveRequest

        policy = AdmissionPolicy()
        db, query = _instance("q_chain", seed=2, skewed=0)
        request = SolveRequest(db, query, mode="exact")
        decision = policy.admit(request, active_solves=0)
        assert decision.accepted and not decision.rerouted
        assert plan_instance(db, query).size_class == "small"

    def test_instance_size_is_the_planner_feature(self):
        from repro.serving.admission import AdmissionPolicy
        from repro.serving.wire import SolveRequest

        policy = AdmissionPolicy()
        db, query = _instance("q_a_chain", seed=3, skewed=0)
        request = SolveRequest(db, query)
        assert policy.instance_size(request) == extract_features(
            db, query
        ).endogenous_tuples

    def test_custom_threshold_keeps_admission_and_classifier_aligned(self):
        from repro.serving.admission import AdmissionPolicy
        from repro.serving.wire import SolveRequest

        policy = AdmissionPolicy(max_exact_tuples=10)
        db, query = _instance("q_chain", seed=4, skewed=0)
        request = SolveRequest(db, query, mode="exact")
        decision = policy.admit(request, active_solves=0)
        features = policy.features(request)
        assert decision.rerouted == is_large_instance(
            features, max_exact_tuples=policy.max_exact_tuples
        )


# ---------------------------------------------------------------------------
# Calibration round-trip and model fallback
# ---------------------------------------------------------------------------

BENCH_RECORDS = (
    "BENCH_e18_hotpaths.json",
    "BENCH_e19_serving.json",
    "BENCH_e20_weighted.json",
)


def _bench_records():
    records = []
    for name in BENCH_RECORDS:
        with open(REPO_ROOT / name) as handle:
            records.append((name, json.load(handle)))
    return records


def _sample_instances():
    for family in ("q_chain", "q_perm", "q_lin"):
        for seed in (0, 7):
            yield _instance(family, seed, skewed=0)


class TestCalibration:
    def test_calibrate_is_deterministic_and_versioned(self):
        records = _bench_records()
        model_a = calibrate(records)
        model_b = calibrate(records)
        assert model_a == model_b
        assert model_a.version.startswith("cal-")
        assert model_a.source == BENCH_RECORDS

    def test_round_trip_reproduces_identical_plans(self, tmp_path):
        model = calibrate(_bench_records())
        path = model.save(tmp_path / "model.json")
        loaded = load_model(path)
        assert loaded == model
        clear_witness_cache()
        for db, query in _sample_instances():
            assert plan_instance(db, query, model=loaded) == plan_instance(
                db, query, model=model
            )

    def test_calibrated_crossovers_match_the_default_table(self):
        """Calibration refits slopes from measured speedups but keeps
        every crossover at the shipped threshold, so calibrated plans
        equal default plans (only the model version differs)."""
        model = calibrate(_bench_records())
        clear_witness_cache()
        for db, query in _sample_instances():
            assert (
                plan_instance(db, query, model=model).signature()
                == plan_instance(db, query, model=DEFAULT_MODEL).signature()
            )

    def test_calibrate_requires_the_e18_record(self):
        records = [r for r in _bench_records() if r[0] != BENCH_RECORDS[0]]
        with pytest.raises(ValueError, match="e18_hotpaths"):
            calibrate(records)

    def test_cli_calibrate_json_round_trip(self, tmp_path, capsys):
        from repro.cli import main

        out = tmp_path / "model.json"
        argv = ["planner", "calibrate"]
        argv += [str(REPO_ROOT / name) for name in BENCH_RECORDS]
        argv += ["--json", str(out)]
        assert main(argv) == 0
        loaded = load_model(out)
        assert loaded.version.startswith("cal-")
        assert "REPRO_PLANNER_MODEL" in capsys.readouterr().out

    def test_cli_explain_smoke(self, tmp_path, capsys):
        from repro.cli import main
        from repro.serving.wire import database_to_spec

        db, query = _instance("q_chain", seed=8, skewed=0)
        db_path = tmp_path / "db.json"
        db_path.write_text(json.dumps(database_to_spec(db)))
        assert main(["planner", "explain", "q_chain", str(db_path)]) == 0
        output = capsys.readouterr().out
        assert "plan: join=" in output
        assert "endogenous_tuples" in output


class TestModelFallback:
    def test_missing_model_file_falls_back_with_a_warning(self, monkeypatch):
        monkeypatch.setenv("REPRO_PLANNER_MODEL", "/nonexistent/model.json")
        clear_model_cache()
        with pytest.warns(UserWarning, match="falling back"):
            model = active_model()
        assert model == DEFAULT_MODEL

    def test_corrupted_model_file_falls_back_with_a_warning(
        self, monkeypatch, tmp_path
    ):
        bad = tmp_path / "model.json"
        bad.write_text("{not json")
        monkeypatch.setenv("REPRO_PLANNER_MODEL", str(bad))
        clear_model_cache()
        with pytest.warns(UserWarning, match="falling back"):
            model = active_model()
        assert model == DEFAULT_MODEL
        # Wrong schema is rejected just as loudly.
        bad.write_text(json.dumps({"schema": 999, "kind": "planner-cost-model"}))
        clear_model_cache()
        with pytest.warns(UserWarning, match="falling back"):
            assert active_model() == DEFAULT_MODEL

    def test_solves_survive_a_corrupted_model(self, monkeypatch, tmp_path):
        bad = tmp_path / "model.json"
        bad.write_text("[]")
        monkeypatch.setenv("REPRO_PLANNER_MODEL", str(bad))
        clear_model_cache()
        db, query = _instance("q_chain", seed=9, skewed=0)
        clear_witness_cache()
        with pytest.warns(UserWarning):
            degraded = solve(db, query)
        monkeypatch.delenv("REPRO_PLANNER_MODEL")
        clear_model_cache()
        clear_witness_cache()
        assert degraded == solve(db, query)

    def test_valid_model_file_is_used_and_memoized(self, monkeypatch, tmp_path):
        path = DEFAULT_MODEL.save(tmp_path / "model.json")
        monkeypatch.setenv("REPRO_PLANNER_MODEL", str(path))
        clear_model_cache()
        assert active_model() == DEFAULT_MODEL
        assert active_model() is active_model()  # memoized by mtime


# ---------------------------------------------------------------------------
# Plan shape and serialization
# ---------------------------------------------------------------------------

class TestPlanShape:
    def test_plan_signature_and_dict_are_stable(self):
        db, query = _instance("q_chain", seed=10, skewed=0)
        clear_witness_cache()
        plan = plan_instance(db, query)
        assert plan.signature().startswith("join=")
        payload = plan.to_dict()
        assert payload["model_version"] == DEFAULT_MODEL.version
        assert payload["features"]["endogenous_tuples"] == len(db)
        json.dumps(payload)  # serializable into BatchStats / metrics

    def test_default_model_choices_match_historical_thresholds(self):
        # Join: columnar from 128 total tuples (ties to columnar).
        assert DEFAULT_MODEL.choose("join", 127) == "reference"
        assert DEFAULT_MODEL.choose("join", 128) == "columnar"
        # Kernel and flow: the engine backends at every size.
        assert DEFAULT_MODEL.choose("kernel", 0) == "bitset"
        assert DEFAULT_MODEL.choose("kernel", 10**6) == "bitset"
        assert DEFAULT_MODEL.choose("flow", 10**6) == "csgraph"
        # Solver: ILP strictly above kernel_size 60 (ties to bnb,
        # replicating choose_backend's strict > comparisons).
        assert DEFAULT_MODEL.choose("solver", 60) == "bnb"
        assert DEFAULT_MODEL.choose("solver", 61) == "ilp"
        # Shard: split from 400 endogenous tuples.
        assert DEFAULT_MODEL.choose("shard", 399) == "whole"
        assert DEFAULT_MODEL.choose("shard", 400) == "split"

    def test_solver_pin_agrees_with_choose_backend(self):
        """When the plan pins a solver from cached kernel features, it
        is the same backend choose_backend derives from the structure."""
        from repro.resilience.exact import choose_backend

        for family in ("q_chain", "q_3chain", "q_sj1_rats"):
            for seed in (0, 3, 11):
                db, query = _instance(family, seed, skewed=0)
                clear_witness_cache()
                ws = witness_structure(db, query)
                plan = plan_instance(db, query)
                if plan.solver != "auto" and ws.satisfied:
                    assert plan.solver == choose_backend(ws)
