"""Property-based tests (hypothesis) for core invariants.

These check laws the paper relies on implicitly:

* resilience is the minimum hitting set of the witness structure;
* deleting a contingency set falsifies the query; deleting fewer than
  rho tuples cannot;
* resilience is monotone under tuple insertion (more tuples, more
  witnesses, never smaller rho);
* the component rule rho(q, D) = min_i rho(q_i, D) (Lemma 14);
* solvers agree pairwise;
* the metamorphic update laws the incremental engine certifies from
  (``TestMetamorphicUpdateLaws``): one endogenous insert/delete moves
  rho by at most 1 in the right direction, exogenous inserts that
  create no new witnesses leave rho unchanged, and rho is invariant
  under active-domain renaming and relation declaration/insertion
  order;
* the metamorphic cost laws of the weighted objective
  (``TestMetamorphicCostLaws``): cost scaling scales the optimum and
  preserves argmins, the cost-1 floor sandwiches the weighted optimum,
  all-unit weighted solves are bit-identical to the unweighted path,
  and exogenous tuples are never charged.

Effort (``max_examples``) comes from the hypothesis profile registered
in ``conftest.py`` — the CI ``tests-properties`` leg runs the deeper
``ci`` profile; do not pin ``max_examples`` here.
"""

import hypothesis.strategies as st
from hypothesis import HealthCheck, given, settings

from repro.db import Database, DBTuple
from repro.query import parse_query, satisfies, witness_tuple_sets
from repro.query.zoo import (
    q_ACconf,
    q_Aperm,
    q_a_chain,
    q_chain,
    q_comp,
    q_perm,
    q_vc,
)
from repro.resilience import (
    resilience_branch_and_bound,
    resilience_exact,
    resilience_ilp,
    solve,
)
from repro.resilience.flow_special import solve_qACconf, solve_qAperm, solve_qperm

SETTINGS = settings(
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

# Strategy: small edge sets over a 5-element domain.
edges = st.lists(
    st.tuples(st.integers(0, 4), st.integers(0, 4)),
    min_size=0,
    max_size=12,
    unique=True,
)
nodes = st.lists(st.integers(0, 4), min_size=0, max_size=5, unique=True)


def chain_db(edge_list):
    db = Database()
    db.declare("R", 2)
    for (u, v) in edge_list:
        db.add("R", u, v)
    return db


class TestHittingSetSemantics:
    @given(edges)
    @SETTINGS
    def test_gamma_falsifies_query(self, edge_list):
        db = chain_db(edge_list)
        res = resilience_branch_and_bound(db, q_chain)
        assert not satisfies(db.minus(res.contingency_set), q_chain)

    @given(edges)
    @SETTINGS
    def test_zero_iff_unsatisfied(self, edge_list):
        db = chain_db(edge_list)
        res = resilience_branch_and_bound(db, q_chain)
        assert (res.value == 0) == (not satisfies(db, q_chain))

    @given(edges)
    @SETTINGS
    def test_backends_agree(self, edge_list):
        db = chain_db(edge_list)
        assert (
            resilience_branch_and_bound(db, q_chain).value
            == resilience_ilp(db, q_chain).value
        )


class TestMonotonicity:
    @given(edges, st.tuples(st.integers(0, 4), st.integers(0, 4)))
    @SETTINGS
    def test_adding_tuples_never_decreases_resilience(self, edge_list, extra):
        db = chain_db(edge_list)
        before = resilience_branch_and_bound(db, q_chain).value
        db.add("R", *extra)
        after = resilience_branch_and_bound(db, q_chain).value
        assert after >= before

    @given(edges)
    @SETTINGS
    def test_resilience_bounded_by_endogenous_size(self, edge_list):
        db = chain_db(edge_list)
        res = resilience_branch_and_bound(db, q_chain)
        assert res.value <= len(db.endogenous_tuples())


class TestComponentRule:
    @given(edges, nodes, nodes)
    @SETTINGS
    def test_lemma_14_min_rule(self, edge_list, a_nodes, b_nodes):
        """rho(q_comp, D) = min(rho(q1, D), rho(q2, D)) for the
        disconnected q_comp :- A(x), R(x,y), R(z,w), B(w)."""
        db = Database()
        db.declare("A", 1)
        db.declare("B", 1)
        db.declare("R", 2)
        for (u, v) in edge_list:
            db.add("R", u, v)
        for a in a_nodes:
            db.add("A", a)
        for b in b_nodes:
            db.add("B", b)
        q1 = parse_query("A(x), R(x,y)")
        q2 = parse_query("R(z,w), B(w)")
        whole = resilience_branch_and_bound(db, q_comp).value
        parts = []
        for q in (q1, q2):
            if satisfies(db, q):
                parts.append(resilience_branch_and_bound(db, q).value)
        if satisfies(db, q_comp):
            assert whole == min(parts)
        else:
            assert whole == 0


class TestSpecialSolversRandomized:
    @given(edges)
    @SETTINGS
    def test_qperm_counting(self, edge_list):
        db = chain_db(edge_list)
        assert (
            solve_qperm(db).value
            == resilience_branch_and_bound(db, q_perm).value
        )

    @given(edges, nodes)
    @SETTINGS
    def test_qAperm_flow(self, edge_list, a_nodes):
        db = chain_db(edge_list)
        db.declare("A", 1)
        for a in a_nodes:
            db.add("A", a)
        assert (
            solve_qAperm(db).value
            == resilience_branch_and_bound(db, q_Aperm).value
        )

    @given(edges, nodes, nodes)
    @SETTINGS
    def test_qACconf_flow(self, edge_list, a_nodes, c_nodes):
        db = chain_db(edge_list)
        db.declare("A", 1)
        db.declare("C", 1)
        for a in a_nodes:
            db.add("A", a)
        for c in c_nodes:
            db.add("C", c)
        assert (
            solve_qACconf(db).value
            == resilience_branch_and_bound(db, q_ACconf).value
        )


class TestVCCorrespondence:
    @given(st.lists(st.tuples(st.integers(0, 4), st.integers(0, 4)).filter(lambda e: e[0] != e[1]), max_size=8, unique=True))
    @SETTINGS
    def test_qvc_resilience_is_vertex_cover(self, edge_list):
        """Proposition 9 as a law: rho(q_vc, D_G) == VC(G)."""
        from repro.workloads import Graph

        vertices = {v for e in edge_list for v in e}
        graph = Graph.make(vertices, edge_list)
        db = Database()
        db.declare("R", 1)
        db.declare("S", 2)
        for v in graph.vertices:
            db.add("R", v)
        for (u, v) in graph.edges:
            db.add("S", u, v)
        rho = resilience_branch_and_bound(db, q_vc).value
        assert rho == (graph.vertex_cover_number() if graph.edges else 0)


class TestMetamorphicUpdateLaws:
    """The single-tuple delta laws :mod:`repro.incremental` certifies
    from: |rho(D ± t) - rho(D)| <= 1 with the right direction for
    endogenous t, exogenous no-new-witness inserts are invisible, and
    rho only depends on database *content*, never on naming or
    declaration order."""

    @given(edges, st.tuples(st.integers(0, 4), st.integers(0, 4)))
    @SETTINGS
    def test_endogenous_insert_moves_rho_up_by_at_most_one(
        self, edge_list, extra
    ):
        db = chain_db(edge_list)
        before = resilience_branch_and_bound(db, q_chain).value
        db.add("R", *extra)
        after = resilience_branch_and_bound(db, q_chain).value
        assert before <= after <= before + 1

    @given(edges)
    @SETTINGS
    def test_endogenous_delete_moves_rho_down_by_at_most_one(self, edge_list):
        db = chain_db(edge_list)
        before = resilience_branch_and_bound(db, q_chain).value
        for fact in sorted(db):
            after = resilience_branch_and_bound(
                db.minus([fact]), q_chain
            ).value
            assert before - 1 <= after <= before

    @given(edges, nodes, st.integers(5, 9))
    @SETTINGS
    def test_exogenous_insert_without_new_witnesses_keeps_rho(
        self, edge_list, a_nodes, fresh
    ):
        """A(x), R(x,y), R(y,z) with A exogenous at the instance level:
        inserting A(c) for a constant outside the R graph creates no
        witness, so rho must not move (the paper's monotonicity only
        bounds it from below)."""
        db = chain_db(edge_list)
        db.declare("A", 1, exogenous=True)
        for a in a_nodes:
            db.add("A", a)
        witnesses_before = set(witness_tuple_sets(db, q_a_chain))
        rho_before = resilience_branch_and_bound(db, q_a_chain).value
        db.add("A", fresh)  # R edges live on 0..4, so no witness appears
        assert set(witness_tuple_sets(db, q_a_chain)) == witnesses_before
        rho_after = resilience_branch_and_bound(db, q_a_chain).value
        assert rho_after == rho_before

    @given(edges)
    @SETTINGS
    def test_rho_invariant_under_active_domain_renaming(self, edge_list):
        db = chain_db(edge_list)
        before = resilience_branch_and_bound(db, q_chain).value
        renamed = Database()
        renamed.declare("R", 2)
        for (u, v) in edge_list:
            renamed.add("R", f"n{u}", f"n{v}")  # injective renaming
        after = resilience_branch_and_bound(renamed, q_chain).value
        assert after == before

    @given(edges, nodes)
    @SETTINGS
    def test_result_invariant_under_declaration_and_insertion_order(
        self, edge_list, a_nodes
    ):
        """Full result equality — value, contingency set, and method —
        when the same content is declared and inserted in different
        orders (determinism is part of the solver contract)."""
        forward = Database()
        forward.declare("A", 1)
        forward.declare("R", 2)
        for (u, v) in edge_list:
            forward.add("R", u, v)
        for a in a_nodes:
            forward.add("A", a)
        backward = Database()
        for a in reversed(a_nodes):
            backward.add("A", a)
        backward.declare("R", 2)
        for (u, v) in reversed(edge_list):
            backward.add("R", u, v)
        backward.declare("A", 1)
        r1 = resilience_exact(forward, q_a_chain)
        r2 = resilience_exact(backward, q_a_chain)
        assert r1.value == r2.value
        assert r1.contingency_set == r2.contingency_set
        assert r1.method == r2.method


# Edge lists paired with positive tuple costs, for the weighted laws.
weighted_edges = st.lists(
    st.tuples(
        st.tuples(st.integers(0, 4), st.integers(0, 4)),
        st.integers(1, 9),
    ),
    min_size=0,
    max_size=12,
    unique_by=lambda pair: pair[0],
)


def weighted_chain_db(weighted_edge_list, scale=1):
    db = Database()
    db.declare("R", 2)
    for (u, v), c in weighted_edge_list:
        db.add("R", u, v, cost=c * scale)
    return db


class TestMetamorphicCostLaws:
    """Metamorphic laws of the weighted (min-cost) objective.

    Weighted resilience is the minimum total *cost* of a contingency
    set, with every tuple's cost a positive integer defaulting to 1.
    The laws: scaling every cost by ``k`` scales the optimum by ``k``
    and preserves optimal sets in both directions; the cost-1 floor
    sandwiches the weighted optimum between the cardinality optimum and
    its max-cost multiple (uniform costs collapse the sandwich to
    equality); all-unit instances are *bit-identical* to the unweighted
    path in all three modes (value, contingency set, interval, and
    method — the delegation contract of
    :func:`repro.resilience.solver.solve`); and exogenous tuples are
    never charged, so their costs are invisible to the optimum.
    """

    @given(weighted_edges, st.integers(2, 5))
    @SETTINGS
    def test_scaling_costs_scales_optimum_and_preserves_argmins(
        self, wedges, k
    ):
        base_db = weighted_chain_db(wedges)
        scaled_db = weighted_chain_db(wedges, scale=k)
        base = solve(base_db, q_chain, weighted=True)
        scaled = solve(scaled_db, q_chain, weighted=True)
        assert scaled.value == k * base.value
        # Each optimum stays optimal under the other cost map.
        assert scaled_db.total_cost(base.contingency_set) == scaled.value
        assert base_db.total_cost(scaled.contingency_set) == base.value

    @given(weighted_edges)
    @SETTINGS
    def test_cost_floor_sandwiches_weighted_optimum(self, wedges):
        """Costs >= 1 force rho <= rho_w <= rho * max_cost; uniform
        costs make both bounds tight."""
        db = weighted_chain_db(wedges)
        rho = solve(db, q_chain).value
        rho_w = solve(db, q_chain, weighted=True).value
        max_cost = max((c for _, c in wedges), default=1)
        assert rho <= rho_w <= rho * max_cost
        uniform = Database()
        uniform.declare("R", 2)
        for (u, v), _ in wedges:
            uniform.add("R", u, v, cost=3)
        res = solve(uniform, q_chain, weighted=True)
        assert res.value == 3 * rho
        assert len(res.contingency_set) == rho

    @given(edges)
    @SETTINGS
    def test_unit_cost_weighted_bit_identical_in_all_modes(self, edge_list):
        db = chain_db(edge_list)
        for mode in ("exact", "approx", "anytime"):
            assert solve(db, q_chain, mode=mode) == solve(
                db, q_chain, mode=mode, weighted=True
            )

    @given(edges)
    @SETTINGS
    def test_unit_cost_weighted_bit_identical_on_flow_special(self, edge_list):
        """The delegation contract on a flow-special query (q_perm)."""
        db = chain_db(edge_list)
        assert solve(db, q_perm, weighted=True) == solve(db, q_perm)

    @given(weighted_edges, nodes, st.integers(1, 9))
    @SETTINGS
    def test_exogenous_tuples_never_charged(self, wedges, a_nodes, exo_cost):
        """q_a_chain with A exogenous: A's costs are invisible to the
        weighted optimum and A never enters a contingency set."""
        db = weighted_chain_db(wedges)
        db.declare("A", 1, exogenous=True)
        for a in a_nodes:
            db.add("A", a)
        before = solve(db, q_a_chain, weighted=True)
        for a in a_nodes:
            db.set_cost(DBTuple("A", (a,)), exo_cost)
        after = solve(db, q_a_chain, weighted=True)
        assert after == before
        assert all(t.relation != "A" for t in after.contingency_set)
        assert db.total_cost(after.contingency_set) == after.value

    @given(weighted_edges)
    @SETTINGS
    def test_weighted_certificate_pays_its_value(self, wedges):
        db = weighted_chain_db(wedges)
        res = solve(db, q_chain, weighted=True)
        assert db.total_cost(res.contingency_set) == res.value
        assert not satisfies(db.minus(res.contingency_set), q_chain)
