"""Property-based tests (hypothesis) for core invariants.

These check laws the paper relies on implicitly:

* resilience is the minimum hitting set of the witness structure;
* deleting a contingency set falsifies the query; deleting fewer than
  rho tuples cannot;
* resilience is monotone under tuple insertion (more tuples, more
  witnesses, never smaller rho);
* the component rule rho(q, D) = min_i rho(q_i, D) (Lemma 14);
* solvers agree pairwise.
"""

import hypothesis.strategies as st
from hypothesis import HealthCheck, given, settings

from repro.db import Database, DBTuple
from repro.query import parse_query, satisfies
from repro.query.zoo import q_ACconf, q_Aperm, q_chain, q_comp, q_perm, q_vc
from repro.resilience import (
    resilience_branch_and_bound,
    resilience_exact,
    resilience_ilp,
)
from repro.resilience.flow_special import solve_qACconf, solve_qAperm, solve_qperm

SETTINGS = settings(
    max_examples=30,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

# Strategy: small edge sets over a 5-element domain.
edges = st.lists(
    st.tuples(st.integers(0, 4), st.integers(0, 4)),
    min_size=0,
    max_size=12,
    unique=True,
)
nodes = st.lists(st.integers(0, 4), min_size=0, max_size=5, unique=True)


def chain_db(edge_list):
    db = Database()
    db.declare("R", 2)
    for (u, v) in edge_list:
        db.add("R", u, v)
    return db


class TestHittingSetSemantics:
    @given(edges)
    @SETTINGS
    def test_gamma_falsifies_query(self, edge_list):
        db = chain_db(edge_list)
        res = resilience_branch_and_bound(db, q_chain)
        assert not satisfies(db.minus(res.contingency_set), q_chain)

    @given(edges)
    @SETTINGS
    def test_zero_iff_unsatisfied(self, edge_list):
        db = chain_db(edge_list)
        res = resilience_branch_and_bound(db, q_chain)
        assert (res.value == 0) == (not satisfies(db, q_chain))

    @given(edges)
    @SETTINGS
    def test_backends_agree(self, edge_list):
        db = chain_db(edge_list)
        assert (
            resilience_branch_and_bound(db, q_chain).value
            == resilience_ilp(db, q_chain).value
        )


class TestMonotonicity:
    @given(edges, st.tuples(st.integers(0, 4), st.integers(0, 4)))
    @SETTINGS
    def test_adding_tuples_never_decreases_resilience(self, edge_list, extra):
        db = chain_db(edge_list)
        before = resilience_branch_and_bound(db, q_chain).value
        db.add("R", *extra)
        after = resilience_branch_and_bound(db, q_chain).value
        assert after >= before

    @given(edges)
    @SETTINGS
    def test_resilience_bounded_by_endogenous_size(self, edge_list):
        db = chain_db(edge_list)
        res = resilience_branch_and_bound(db, q_chain)
        assert res.value <= len(db.endogenous_tuples())


class TestComponentRule:
    @given(edges, nodes, nodes)
    @SETTINGS
    def test_lemma_14_min_rule(self, edge_list, a_nodes, b_nodes):
        """rho(q_comp, D) = min(rho(q1, D), rho(q2, D)) for the
        disconnected q_comp :- A(x), R(x,y), R(z,w), B(w)."""
        db = Database()
        db.declare("A", 1)
        db.declare("B", 1)
        db.declare("R", 2)
        for (u, v) in edge_list:
            db.add("R", u, v)
        for a in a_nodes:
            db.add("A", a)
        for b in b_nodes:
            db.add("B", b)
        q1 = parse_query("A(x), R(x,y)")
        q2 = parse_query("R(z,w), B(w)")
        whole = resilience_branch_and_bound(db, q_comp).value
        parts = []
        for q in (q1, q2):
            if satisfies(db, q):
                parts.append(resilience_branch_and_bound(db, q).value)
        if satisfies(db, q_comp):
            assert whole == min(parts)
        else:
            assert whole == 0


class TestSpecialSolversRandomized:
    @given(edges)
    @SETTINGS
    def test_qperm_counting(self, edge_list):
        db = chain_db(edge_list)
        assert (
            solve_qperm(db).value
            == resilience_branch_and_bound(db, q_perm).value
        )

    @given(edges, nodes)
    @SETTINGS
    def test_qAperm_flow(self, edge_list, a_nodes):
        db = chain_db(edge_list)
        db.declare("A", 1)
        for a in a_nodes:
            db.add("A", a)
        assert (
            solve_qAperm(db).value
            == resilience_branch_and_bound(db, q_Aperm).value
        )

    @given(edges, nodes, nodes)
    @SETTINGS
    def test_qACconf_flow(self, edge_list, a_nodes, c_nodes):
        db = chain_db(edge_list)
        db.declare("A", 1)
        db.declare("C", 1)
        for a in a_nodes:
            db.add("A", a)
        for c in c_nodes:
            db.add("C", c)
        assert (
            solve_qACconf(db).value
            == resilience_branch_and_bound(db, q_ACconf).value
        )


class TestVCCorrespondence:
    @given(st.lists(st.tuples(st.integers(0, 4), st.integers(0, 4)).filter(lambda e: e[0] != e[1]), max_size=8, unique=True))
    @SETTINGS
    def test_qvc_resilience_is_vertex_cover(self, edge_list):
        """Proposition 9 as a law: rho(q_vc, D_G) == VC(G)."""
        from repro.workloads import Graph

        vertices = {v for e in edge_list for v in e}
        graph = Graph.make(vertices, edge_list)
        db = Database()
        db.declare("R", 1)
        db.declare("S", 2)
        for v in graph.vertices:
            db.add("R", v)
        for (u, v) in graph.edges:
            db.add("S", u, v)
        rho = resilience_branch_and_bound(db, q_vc).value
        assert rho == (graph.vertex_cover_number() if graph.edges else 0)
