"""Tests for ConjunctiveQuery structure (repro.query.cq)."""

import pytest

from repro.query import Atom, ConjunctiveQuery, parse_query
from repro.query.zoo import q_chain, q_comp, q_rats, q_triangle, q_vc


class TestBasics:
    def test_variables(self):
        assert q_chain.variables() == {"x", "y", "z"}

    def test_occurrence_counts(self):
        assert q_chain.occurrence_counts() == {"R": 2}
        assert q_triangle.occurrence_counts() == {"R": 1, "S": 1, "T": 1}

    def test_self_join_free(self):
        assert q_triangle.is_self_join_free()
        assert not q_chain.is_self_join_free()

    def test_single_self_join(self):
        assert q_chain.is_single_self_join()
        assert q_chain.self_join_relation() == "R"
        assert q_triangle.self_join_relation() is None

    def test_is_binary(self):
        assert q_chain.is_binary()
        assert not parse_query("W(x,y,z)").is_binary()

    def test_inconsistent_exogenous_flags_rejected(self):
        with pytest.raises(ValueError):
            ConjunctiveQuery(
                [Atom("R", ("x", "y")), Atom("R", ("y", "z"), exogenous=True)]
            )

    def test_inconsistent_arity_rejected(self):
        with pytest.raises(ValueError):
            ConjunctiveQuery([Atom("R", ("x",)), Atom("R", ("y", "z"))])

    def test_empty_body_rejected(self):
        with pytest.raises(ValueError):
            ConjunctiveQuery([])


class TestComponents:
    def test_connected_query(self):
        assert q_chain.is_connected()
        assert len(q_chain.components()) == 1

    def test_disconnected_query(self):
        comps = q_comp.components()
        assert len(comps) == 2
        sizes = sorted(len(c.atoms) for c in comps)
        assert sizes == [2, 2]

    def test_component_atoms_partition_body(self):
        comps = q_comp.components()
        all_atoms = [a for c in comps for a in c.atoms]
        assert len(all_atoms) == len(q_comp.atoms)


class TestDerivation:
    def test_with_atoms_exogenous(self):
        q2 = q_rats.with_atoms_exogenous(["R", "T"])
        flags = q2.relation_flags()
        assert flags["R"] and flags["T"] and not flags["A"]

    def test_drop_atoms(self):
        q2 = q_vc.drop_atoms([1])
        assert len(q2.atoms) == 2

    def test_rename_variables(self):
        q2 = q_chain.rename_variables({"x": "u"})
        assert q2.atoms[0].args == ("u", "y")

    def test_equality_is_structural(self):
        a = parse_query("R(x,y), S(y,z)")
        b = parse_query("S(y,z), R(x,y)")
        assert a == b
        assert hash(a) == hash(b)
