"""Tests for witness enumeration (repro.query.evaluation)."""

import pytest

from repro.db import Database, DBTuple
from repro.query import parse_query, satisfies, witness_tuple_sets, witnesses
from repro.query.evaluation import witness_tuples
from repro.query.zoo import q_chain, q_triangle, q_vc


class TestWitnesses:
    def test_paper_chain_example(self, chain_db):
        """Section 2: witnesses(D, qchain) = {(1,2,3), (2,3,3), (3,3,3)}."""
        ws = {tuple(w[v] for v in ("x", "y", "z")) for w in witnesses(chain_db, q_chain)}
        assert ws == {(1, 2, 3), (2, 3, 3), (3, 3, 3)}

    def test_paper_chain_tuple_sets(self, chain_db):
        """Their tuple sets are {t1,t2}, {t2,t3}, {t3} (Section 2)."""
        t1, t2, t3 = DBTuple("R", (1, 2)), DBTuple("R", (2, 3)), DBTuple("R", (3, 3))
        sets = set(witness_tuple_sets(chain_db, q_chain))
        assert sets == {frozenset({t1, t2}), frozenset({t2, t3}), frozenset({t3})}

    def test_satisfies(self, chain_db):
        assert satisfies(chain_db, q_chain)
        empty = Database()
        empty.declare("R", 2)
        assert not satisfies(empty, q_chain)

    def test_missing_relation_means_unsatisfied(self):
        db = Database()
        db.add("R", 1)
        assert not satisfies(db, q_vc)  # S missing entirely

    def test_repeated_variable_constrains(self):
        q = parse_query("R(x,x)")
        db = Database()
        db.add("R", 1, 2)
        assert not satisfies(db, q)
        db.add("R", 2, 2)
        assert satisfies(db, q)

    def test_triangle_witness(self):
        db = Database()
        db.add("R", 1, 2)
        db.add("S", 2, 3)
        db.add("T", 3, 1)
        ws = witnesses(db, q_triangle)
        assert len(ws) == 1
        assert ws[0] == {"x": 1, "y": 2, "z": 3}

    def test_exogenous_tuples_excluded_from_sets(self):
        q = parse_query("A(x), H^x(x,y), B(y)")
        db = Database()
        db.add("A", 1)
        db.declare("H", 2, exogenous=True)
        db.add("H", 1, 2)
        db.add("B", 2)
        (s,) = witness_tuple_sets(db, q)
        assert s == frozenset({DBTuple("A", (1,)), DBTuple("B", (2,))})

    def test_db_exogenous_flag_also_respected(self):
        q = parse_query("A(x), H(x,y), B(y)")
        db = Database()
        db.add("A", 1)
        db.declare("H", 2, exogenous=True)
        db.add("H", 1, 2)
        db.add("B", 2)
        (s,) = witness_tuple_sets(db, q)
        assert DBTuple("H", (1, 2)) not in s

    def test_duplicate_tuple_sets_collapsed(self):
        # qperm witnesses (a,b) and (b,a) use the same two tuples.
        q = parse_query("R(x,y), R(y,x)")
        db = Database()
        db.add_all("R", [(1, 2), (2, 1)])
        sets = witness_tuple_sets(db, q)
        assert len(sets) == 1

    def test_witness_tuples_helper(self, chain_db):
        w = {"x": 1, "y": 2, "z": 3}
        assert witness_tuples(q_chain, w) == {
            DBTuple("R", (1, 2)),
            DBTuple("R", (2, 3)),
        }

    def test_self_join_same_tuple_both_atoms(self):
        """A loop R(3,3) satisfies both chain atoms at once."""
        db = Database()
        db.add("R", 3, 3)
        ws = witnesses(db, q_chain)
        assert len(ws) == 1

    def test_witness_count_on_cross_product(self):
        q = parse_query("R(x,y), S(u,v)")
        db = Database()
        db.add_all("R", [(1, 2), (3, 4)])
        db.add_all("S", [(5, 6), (7, 8), (9, 10)])
        assert len(witnesses(db, q)) == 6
