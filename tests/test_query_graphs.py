"""Tests for the dual hypergraph and binary graph representations."""

import pytest

from repro.query import BinaryGraph, DualHypergraph, parse_query
from repro.query.zoo import q_chain, q_lin, q_rats, q_triangle, q_vc


class TestDualHypergraph:
    def test_hyperedges_are_variables(self):
        h = DualHypergraph(q_triangle)
        assert set(h.hyperedges) == {"x", "y", "z"}
        # y joins atoms R(x,y) and S(y,z): indices 0 and 1.
        assert h.hyperedges["y"] == frozenset({0, 1})

    def test_path_avoiding_blocks(self):
        h = DualHypergraph(q_triangle)
        # R -> S via y avoiding var(T) = {z, x}: allowed.
        assert h.path_avoiding(0, 1, {"z", "x"}) is not None
        # R -> S avoiding y as well: impossible.
        assert h.path_avoiding(0, 1, {"x", "y", "z"}) is None

    def test_path_through_intermediate_atom(self):
        h = DualHypergraph(q_rats)
        # R(x,y) to S(y,z) directly via y.
        r_idx = 0
        s_idx = 3
        path = h.path_avoiding(r_idx, s_idx, ())
        assert path is not None

    def test_connected(self):
        h = DualHypergraph(q_chain)
        assert h.connected(0, 1)

    def test_to_networkx_bipartite(self):
        g = DualHypergraph(q_vc).to_networkx()
        atom_nodes = [n for n in g.nodes if n[0] == "atom"]
        var_nodes = [n for n in g.nodes if n[0] == "var"]
        assert len(atom_nodes) == 3 and len(var_nodes) == 2


class TestBinaryGraph:
    def test_vc_binary_graph(self):
        """Figure 2b: q_vc has loops at x and y plus an S edge."""
        g = BinaryGraph(q_vc)
        assert ("x", "R") in g.unary_loops
        assert ("y", "R") in g.unary_loops
        assert ("x", "y", "S", False) in g.edges

    def test_chain_binary_graph(self):
        """Figure 2d: x -R-> y -R-> z."""
        g = BinaryGraph(q_chain)
        assert ("x", "y", "R", False) in g.edges
        assert ("y", "z", "R", False) in g.edges

    def test_non_binary_rejected(self):
        with pytest.raises(ValueError):
            BinaryGraph(q_lin)  # R(x,y,z) is ternary

    def test_exogenous_flag_in_edges(self):
        q = parse_query("R(x,y), H^x(x,z), R(z,y)")
        g = BinaryGraph(q)
        assert ("x", "z", "H", True) in g.edges

    def test_degree_profile(self):
        g = BinaryGraph(q_chain)
        assert g.degree_profile()["y"] == (1, 1)
        assert g.degree_profile()["x"] == (0, 1)

    def test_ascii_render_mentions_all_atoms(self):
        text = BinaryGraph(q_chain).ascii_render()
        assert text.count("-R->") == 2

    def test_to_networkx_multidigraph(self):
        g = BinaryGraph(q_chain).to_networkx()
        assert g.number_of_edges() == 2
