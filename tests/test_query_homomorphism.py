"""Tests for containment and Chandra-Merlin minimization."""

import pytest

from repro.query import (
    are_equivalent,
    find_homomorphism,
    is_contained_in,
    is_minimal,
    minimize,
    parse_query,
)
from repro.query.zoo import q_chain, q_ex22_sj, q_perm, q_triangle, q_vc


class TestHomomorphism:
    def test_identity(self):
        h = find_homomorphism(q_chain, q_chain)
        assert h is not None

    def test_chain_into_loop(self):
        loop = parse_query("R(x,x)")
        h = find_homomorphism(q_chain, loop)
        assert h is not None
        assert h["x"] == h["y"] == h["z"] == "x"

    def test_no_hom_when_relation_missing(self):
        assert find_homomorphism(q_triangle, q_chain) is None

    def test_containment_direction(self):
        # loop => chain: every database with R(a,a) satisfies qchain.
        loop = parse_query("R(x,x)")
        assert is_contained_in(loop, q_chain)
        assert not is_contained_in(q_chain, loop)

    def test_equivalence_of_renamings(self):
        a = parse_query("R(x,y), R(y,z)")
        b = parse_query("R(u,v), R(v,w)")
        assert are_equivalent(a, b)


class TestMinimization:
    def test_chain_is_minimal(self):
        assert is_minimal(q_chain)

    def test_perm_is_minimal(self):
        assert is_minimal(q_perm)

    def test_vc_is_minimal(self):
        assert is_minimal(q_vc)

    def test_example_22_collapses(self):
        """q :- R(x,y), R(z,y), R(z,w), R(x,w) is equivalent to R(x,y)."""
        core = minimize(q_ex22_sj)
        assert len(core.atoms) == 1
        assert core.atoms[0].relation == "R"

    def test_redundant_atom_removed(self):
        q = parse_query("R(x,y), R(x,z)")  # hom z -> y collapses
        core = minimize(q)
        assert len(core.atoms) == 1

    def test_minimize_preserves_equivalence(self):
        core = minimize(q_ex22_sj)
        assert are_equivalent(core, q_ex22_sj)

    def test_minimize_idempotent(self):
        once = minimize(q_ex22_sj)
        twice = minimize(once)
        assert once == twice

    def test_confluence_alone_not_minimal(self):
        """Section 7.2: stand-alone qconf is not minimal."""
        q = parse_query("R(x,y), R(z,y)")
        assert not is_minimal(q)

    def test_3perm_alone_not_minimal(self):
        """Section 8.4: q3perm-R alone is not minimal."""
        q = parse_query("R(x,y), R(y,z), R(z,y)")
        assert not is_minimal(q)

    def test_3conf_alone_not_minimal(self):
        """Section 8.2: q3conf alone is not minimal."""
        q = parse_query("R(x,y), R(z,y), R(z,w)")
        assert not is_minimal(q)
