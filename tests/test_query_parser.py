"""Tests for the Datalog-style query parser."""

import pytest

from repro.query import parse_query


class TestParser:
    def test_basic_chain(self):
        q = parse_query("qchain() :- R(x,y), R(y,z)")
        assert q.name == "qchain"
        assert [a.relation for a in q.atoms] == ["R", "R"]
        assert q.atoms[0].args == ("x", "y")

    def test_headless(self):
        q = parse_query("R(x), S(x,y), R(y)")
        assert len(q.atoms) == 3

    def test_explicit_exogenous_marker(self):
        q = parse_query("A(x), W^x(x,y,z)")
        assert not q.atoms[0].exogenous
        assert q.atoms[1].exogenous
        assert q.atoms[1].relation == "W"

    def test_paper_typography_marker(self):
        q = parse_query("Rx(x,y), A(x), Tx(z,x), S(y,z)")
        flags = q.relation_flags()
        assert flags["R"] and flags["T"]
        assert not flags["A"] and not flags["S"]

    def test_unary_atoms(self):
        q = parse_query("A(x), B(y), C(z), W(x,y,z)")
        assert q.atoms[0].arity == 1
        assert q.atoms[3].arity == 3

    def test_repeated_variables(self):
        q = parse_query("R(x,x), R(x,y), A(y)")
        assert q.atoms[0].has_repeated_variable()

    def test_garbage_rejected(self):
        with pytest.raises(ValueError):
            parse_query("this is not a query")

    def test_empty_args_rejected(self):
        with pytest.raises(ValueError):
            parse_query("R()")

    def test_name_override(self):
        q = parse_query("R(x,y)", name="custom")
        assert q.name == "custom"

    def test_whitespace_tolerance(self):
        q = parse_query("  R( x , y ) ,   S(y , z)  ")
        assert q.atoms[0].args == ("x", "y")
        assert q.atoms[1].args == ("y", "z")

    def test_duplicate_atoms_deduplicated(self):
        q = parse_query("R(x,y), R(x,y)")
        assert len(q.atoms) == 1
