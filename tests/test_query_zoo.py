"""Sanity tests for the query zoo: the paper's queries parsed correctly."""

import pytest

from repro.query.homomorphism import is_minimal
from repro.query.zoo import (
    ALL_QUERIES,
    PAPER_VERDICTS,
    q_AC3conf,
    q_TS3conf,
    q_chain,
    q_cfp,
    q_rats,
    q_sj1_rats,
    q_tripod,
    q_vc,
)


class TestZooShape:
    def test_every_query_named(self):
        for name, q in ALL_QUERIES.items():
            assert q.name == name

    def test_verdicts_reference_real_queries(self):
        for name in PAPER_VERDICTS:
            assert name in ALL_QUERIES, name

    def test_exogenous_markers(self):
        flags = q_TS3conf.relation_flags()
        assert flags["T"] and flags["S"] and not flags["R"]
        assert q_cfp.relation_flags()["H"]

    def test_binary_fragment(self):
        """Every ssj query in the dichotomy fragment is binary."""
        for name in ("q_chain", "q_vc", "q_ABperm", "q_AC3conf", "q_z5"):
            assert ALL_QUERIES[name].is_binary()

    def test_tripod_is_not_binary(self):
        assert not q_tripod.is_binary()

    def test_ssj_flags(self):
        assert q_chain.is_single_self_join()
        assert q_sj1_rats.self_join_relation() == "R"
        assert q_rats.is_self_join_free()


class TestZooMinimality:
    """The paper's analysis assumes minimal queries (Section 4.1)."""

    @pytest.mark.parametrize(
        "name",
        [
            "q_triangle", "q_tripod", "q_rats", "q_lin", "q_brats",
            "q_vc", "q_chain", "q_ACconf", "q_A3perm_R", "q_sj1_rats",
            "q_perm", "q_Aperm", "q_ABperm", "q_cfp",
            "q_a_chain", "q_abc_chain", "q_z3", "q_z5",
            "q_3chain", "q_AC3conf", "q_TS3conf", "q_AS3conf",
            "q_Sxy3perm_R", "q_AC3perm_R",
        ],
    )
    def test_named_query_is_minimal(self, name):
        assert is_minimal(ALL_QUERIES[name]), name

    def test_ex22_variation_is_not_minimal(self):
        assert not is_minimal(ALL_QUERIES["q_ex22_sj"])
