"""Property tests over randomly generated queries.

The zoo covers the paper's named queries; these tests sweep hundreds of
random queries through the structural machinery, checking internal
consistency laws:

* the classifier never crashes and always returns a rule;
* a P verdict is trustworthy: the dispatching solver equals exact
  search on random databases (soundness of the PTIME side end-to-end);
* minimization preserves equivalence and is idempotent;
* normalization preserves resilience (Proposition 18) on random data;
* Theorem 25 (no triad => pseudo-linear) holds.
"""

import pytest

from repro.query.homomorphism import are_equivalent, minimize
from repro.resilience import resilience_exact, solve
from repro.resilience.types import UnbreakableQueryError
from repro.structure import Verdict, classify, normalize
from repro.structure.linearity import no_triad_implies_pseudo_linear
from repro.workloads import random_database_for_query
from repro.workloads.random_queries import random_sjfree_cq, random_ssj_binary_cq

SSJ_SEEDS = list(range(60))
SJFREE_SEEDS = list(range(30))


class TestClassifierTotality:
    @pytest.mark.parametrize("seed", SSJ_SEEDS)
    def test_classifier_total_on_ssj(self, seed):
        q = random_ssj_binary_cq(seed=seed)
        result = classify(q)
        assert result.verdict in (Verdict.P, Verdict.NPC, Verdict.OPEN)
        assert result.rule

    @pytest.mark.parametrize("seed", SJFREE_SEEDS)
    def test_sjfree_never_open(self, seed):
        """Theorem 7 is a full dichotomy: sj-free queries are never OPEN."""
        q = random_sjfree_cq(seed=seed)
        result = classify(q)
        assert result.verdict in (Verdict.P, Verdict.NPC), (q, result)


class TestPSideSoundness:
    @pytest.mark.parametrize("seed", SSJ_SEEDS)
    def test_p_verdict_solver_agrees_with_exact(self, seed):
        q = random_ssj_binary_cq(seed=seed)
        if classify(q).verdict != Verdict.P:
            return
        for db_seed in range(3):
            db = random_database_for_query(q, domain_size=4, density=0.4, seed=db_seed)
            try:
                fast = solve(db, q).value
                slow = resilience_exact(db, q).value
            except UnbreakableQueryError:
                continue
            assert fast == slow, (q, db_seed)


class TestMinimization:
    @pytest.mark.parametrize("seed", SSJ_SEEDS[:30])
    def test_minimize_preserves_equivalence(self, seed):
        q = random_ssj_binary_cq(seed=seed)
        core = minimize(q)
        assert are_equivalent(q, core)

    @pytest.mark.parametrize("seed", SSJ_SEEDS[:30])
    def test_minimize_idempotent(self, seed):
        q = random_ssj_binary_cq(seed=seed)
        once = minimize(q)
        assert minimize(once) == once


class TestNormalizationSoundness:
    @pytest.mark.parametrize("seed", SSJ_SEEDS[:25])
    def test_proposition_18_on_random_queries(self, seed):
        q = random_ssj_binary_cq(seed=seed, allow_exogenous=False)
        norm = normalize(q)
        if norm == q:
            return
        for db_seed in range(2):
            db = random_database_for_query(q, domain_size=3, density=0.5, seed=db_seed)
            try:
                assert (
                    resilience_exact(db, q).value
                    == resilience_exact(db, norm).value
                )
            except UnbreakableQueryError:
                continue


class TestTheorem25:
    @pytest.mark.parametrize("seed", SSJ_SEEDS)
    def test_no_triad_implies_pseudo_linear(self, seed):
        q = random_ssj_binary_cq(seed=seed)
        # The theorem concerns minimal connected queries in normal form.
        norm = normalize(minimize(q))
        for comp in norm.components():
            assert no_triad_implies_pseudo_linear(comp)
