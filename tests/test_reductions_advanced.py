"""Tests for the path, sj-variation, chain-expansion, triangle, triad,
rats, and permutation reductions."""

import itertools

import pytest

from repro.db import Database
from repro.query import parse_query
from repro.query.zoo import (
    q_ABperm,
    q_AC3perm_R,
    q_chain,
    q_rats,
    q_triangle,
    q_triangle_sj2,
    q_tripod,
    q_vc,
    q_z1,
)
from repro.reductions.chain_expansion import chain_expansion_instance
from repro.reductions.chain_gadgets import chain_instance
from repro.reductions.paths import (
    binary_path_instance,
    path_instance,
    unary_path_instance,
)
from repro.reductions.perm_gadgets import (
    abperm_instance,
    bounded_permutation_instance,
)
from repro.reductions.rats_gadgets import sj1_brats_instance, sj1_rats_instance
from repro.reductions.sj_variation import sj_variation_instance
from repro.reductions.triangle import triangle_instance, triad_instance, tripod_instance
from repro.resilience.exact import resilience_exact, resilience_ilp
from repro.workloads import CNFFormula, random_3cnf, random_database_for_query, random_graph

UNSAT_3 = CNFFormula(
    3,
    tuple(
        tuple(s * (i + 1) for i, s in enumerate(signs))
        for signs in itertools.product([1, -1], repeat=3)
    ),
)


class TestPathReductions:
    @pytest.mark.parametrize("seed", range(4))
    def test_unary_path_preserves_vc(self, seed):
        q = parse_query("R(x), S(x,y), R(y), B(y)")
        graph = random_graph(5, 0.5, seed=seed)
        if not graph.edges:
            return
        vc = graph.vertex_cover_number()
        inst = unary_path_instance(q, graph, vc)
        assert resilience_ilp(inst.database, q).value == vc

    @pytest.mark.parametrize("seed", range(4))
    def test_binary_path_preserves_vc_z1(self, seed):
        graph = random_graph(5, 0.5, seed=seed)
        if not graph.edges:
            return
        vc = graph.vertex_cover_number()
        inst = binary_path_instance(q_z1, graph, vc)
        assert resilience_ilp(inst.database, q_z1).value == vc

    def test_binary_path_with_longer_query(self):
        q = parse_query("R(x,y), S(y,u), T(u,z), R(z,w)")
        graph = random_graph(5, 0.5, seed=2)
        vc = graph.vertex_cover_number()
        inst = binary_path_instance(q, graph, vc)
        assert resilience_ilp(inst.database, q).value == vc

    def test_dispatch(self):
        graph = random_graph(4, 0.6, seed=0)
        inst = path_instance(q_z1, graph, 1)
        assert inst.query is q_z1

    def test_no_path_raises(self):
        graph = random_graph(4, 0.5, seed=0)
        with pytest.raises(ValueError):
            unary_path_instance(q_chain, graph, 1)


class TestSJVariation:
    @pytest.mark.parametrize("seed", range(6))
    def test_lemma_21_preserves_resilience(self, seed):
        """rho(q_triangle, D) == rho(q_triangle_sj2, D') exactly."""
        db = random_database_for_query(q_triangle, domain_size=4, density=0.5, seed=seed)
        base = resilience_exact(db, q_triangle).value
        inst = sj_variation_instance(q_triangle, q_triangle_sj2, db, base)
        lifted = resilience_exact(inst.database, q_triangle_sj2).value
        assert lifted == base

    def test_non_minimal_variation_rejected(self):
        from repro.query.zoo import q_ex22_sj, q_ex22_sjfree

        db = random_database_for_query(q_ex22_sjfree, domain_size=3, density=0.5, seed=0)
        with pytest.raises(ValueError):
            sj_variation_instance(q_ex22_sjfree, q_ex22_sj, db, 1)

    def test_atom_mismatch_rejected(self):
        with pytest.raises(ValueError):
            sj_variation_instance(q_triangle, q_chain, Database(), 0)


class TestChainExpansionReduction:
    def test_prop_30_preserves_resilience(self):
        """Map a small chain-gadget DB through Prop 30 into a bigger query."""
        f = random_3cnf(3, 1, seed=0)
        src = chain_instance(f)
        target = parse_query("A(x), R(x,y), R(y,z), D^x(z,w)")
        inst = chain_expansion_instance(
            target, src.database, src.k,
            source_query=parse_query("A(x), R(x,y), R(y,z)", name="q_a_chain"),
        )
        rho_src = resilience_ilp(src.database, chain_instance(f, "a").query).value
        # Build the matching source db with A facts for a fair comparison:
        src_a = chain_instance(f, "a")
        rho_a = resilience_ilp(src_a.database, src_a.query).value
        rho_tgt = resilience_ilp(inst.database, target).value
        # The reduction maps the plain-R database; its witnesses carry over.
        assert rho_tgt <= rho_a

    @pytest.mark.parametrize("seed", range(4))
    def test_prop_30_on_random_dbs(self, seed):
        """Resilience preserved exactly on random chain databases."""
        from repro.query.zoo import q_chain as src_q

        target = parse_query("R(x,y), R(y,z), D^x(z,w)")
        db = random_database_for_query(src_q, domain_size=4, density=0.4, seed=seed)
        base = resilience_exact(db, src_q).value
        inst = chain_expansion_instance(target, db, base, source_query=src_q)
        assert resilience_exact(inst.database, target).value == base


class TestTriangleFamily:
    def test_triangle_gadget_satisfiable(self):
        f = random_3cnf(3, 1, seed=0)
        inst = triangle_instance(f)
        assert resilience_ilp(inst.database, q_triangle).value == inst.k

    def test_triangle_gadget_unsatisfiable(self):
        inst = triangle_instance(UNSAT_3)
        assert resilience_ilp(inst.database, q_triangle).value == inst.k + 1

    def test_tripod_reduction_preserves_resilience(self):
        db = Database()
        db.add_all("R", [(1, 2), (4, 2)])
        db.add_all("S", [(2, 3)])
        db.add_all("T", [(3, 1), (3, 4)])
        base = resilience_exact(db, q_triangle).value
        inst = tripod_instance(db, base)
        assert resilience_exact(inst.database, q_tripod).value == base

    def test_generic_triad_reduction_tripod(self):
        """Lemma 6 via the 7-group partition, applied to q_tripod."""
        db = Database()
        db.add_all("R", [(1, 2), (4, 2), (4, 5)])
        db.add_all("S", [(2, 3), (5, 3)])
        db.add_all("T", [(3, 1), (3, 4)])
        base = resilience_exact(db, q_triangle).value
        from repro.structure import normalize

        norm = normalize(q_tripod)
        inst = triad_instance(norm, None, db, base)
        assert resilience_exact(inst.database, norm).value == base

    def test_generic_triad_reduction_custom_query(self):
        """A triad with shared variables (Case 2 of Lemma 6)."""
        q = parse_query("R(x,y), S(y,z), T(z,x), U^x(x,y,z)")
        db = Database()
        db.add_all("R", [(1, 2), (4, 2)])
        db.add_all("S", [(2, 3)])
        db.add_all("T", [(3, 1), (3, 4)])
        base = resilience_exact(db, q_triangle).value
        inst = triad_instance(q, (0, 1, 2), db, base)
        assert resilience_exact(inst.database, q).value == base


class TestRatsGadgets:
    def test_sj1_rats_satisfiable(self):
        f = random_3cnf(3, 1, seed=1)
        inst = sj1_rats_instance(f)
        assert resilience_ilp(inst.database, inst.query).value == inst.k

    def test_sj1_brats_satisfiable(self):
        f = random_3cnf(3, 1, seed=2)
        inst = sj1_brats_instance(f)
        assert resilience_ilp(inst.database, inst.query).value == inst.k


class TestPermGadgets:
    @pytest.mark.parametrize("seed", range(3))
    def test_abperm_satisfiable(self, seed):
        f = random_3cnf(3, 2, seed=seed)
        inst = abperm_instance(f)
        rho = resilience_ilp(inst.database, inst.query).value
        assert (rho <= inst.k) == f.is_satisfiable()

    def test_abperm_unsatisfiable(self):
        inst = abperm_instance(UNSAT_3)
        assert resilience_ilp(inst.database, inst.query).value == inst.k + 1

    @pytest.mark.parametrize("seed", range(4))
    def test_bounded_permutation_lifting(self, seed):
        """Prop 35 case 2: resilience carried from q_ABperm to a bound query."""
        q = parse_query("S(u,x), R(x,y), R(y,x), T(y,v)")
        db = random_database_for_query(q_ABperm, domain_size=4, density=0.5, seed=seed)
        base = resilience_exact(db, q_ABperm).value
        inst = bounded_permutation_instance(q, db, base)
        assert resilience_exact(inst.database, q).value == base

    def test_abperm_to_ac3perm_r(self):
        """Prop 46's reduction exists structurally: q_AC3perm_R classified hard."""
        from repro.structure import Verdict, classify

        assert classify(q_AC3perm_R).verdict == Verdict.NPC
