"""Tests for the VC and chain-gadget reductions (Props 9/10, Lemmas 52-54)."""

import itertools

import pytest

from repro.query.zoo import q_vc
from repro.reductions.chain_gadgets import CHAIN_EXPANSIONS, chain_instance
from repro.reductions.vertex_cover import vc_instance
from repro.resilience.exact import resilience_exact, resilience_ilp
from repro.workloads import CNFFormula, random_3cnf, random_graph

UNSAT_3 = CNFFormula(
    3,
    tuple(
        tuple(s * (i + 1) for i, s in enumerate(signs))
        for signs in itertools.product([1, -1], repeat=3)
    ),
)


class TestVCReduction:
    @pytest.mark.parametrize("seed", range(8))
    def test_resilience_equals_vertex_cover(self, seed):
        graph = random_graph(6, 0.45, seed=seed)
        if not graph.edges:
            return
        vc = graph.vertex_cover_number()
        inst = vc_instance(graph, vc)
        assert resilience_exact(inst.database, q_vc).value == vc

    @pytest.mark.parametrize("seed", range(4))
    def test_biconditional(self, seed):
        graph = random_graph(5, 0.5, seed=seed)
        if not graph.edges:
            return
        vc = graph.vertex_cover_number()
        assert vc_instance(graph, vc).verify(expected_yes=True)
        assert vc_instance(graph, vc - 1).verify(expected_yes=False)


class TestChainGadgets:
    @pytest.mark.parametrize("seed", range(5))
    def test_satisfiable_formula_hits_threshold(self, seed):
        f = random_3cnf(3, 2, seed=seed)
        inst = chain_instance(f)
        rho = resilience_ilp(inst.database, inst.query).value
        assert (rho <= inst.k) == f.is_satisfiable()

    def test_unsatisfiable_formula_exceeds_threshold(self):
        inst = chain_instance(UNSAT_3)
        rho = resilience_ilp(inst.database, inst.query).value
        assert rho == inst.k + 1

    def test_threshold_formula(self):
        f = random_3cnf(4, 3, seed=0)
        inst = chain_instance(f)
        assert inst.k == 4 * 3 + 5 * 3

    @pytest.mark.parametrize("unaries", sorted(CHAIN_EXPANSIONS))
    def test_expansion_biconditional_satisfiable(self, unaries):
        f = random_3cnf(3, 2, seed=11)
        assert f.is_satisfiable()
        inst = chain_instance(f, unaries)
        rho = resilience_ilp(inst.database, inst.query).value
        assert rho <= inst.k

    @pytest.mark.parametrize("unaries", sorted(CHAIN_EXPANSIONS))
    def test_expansion_biconditional_unsatisfiable(self, unaries):
        inst = chain_instance(UNSAT_3, unaries)
        rho = resilience_ilp(inst.database, inst.query).value
        assert rho > inst.k

    def test_unknown_expansion_rejected(self):
        with pytest.raises(ValueError):
            chain_instance(random_3cnf(3, 1, seed=0), "xyz")

    def test_zero_clauses_rejected(self):
        with pytest.raises(ValueError):
            chain_instance(CNFFormula(3, ()))

    def test_variable_gadget_minimum_is_m_per_variable(self):
        """A lone variable cycle (no clauses touching it) costs exactly m."""
        f = random_3cnf(4, 2, seed=1)  # at least one variable unused per clause
        inst = chain_instance(f)
        # The full instance achieves k when satisfiable; the per-variable
        # share of k is m.
        assert inst.k == (f.num_vars + 5) * f.num_clauses
