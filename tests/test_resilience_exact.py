"""Tests for the exact resilience solvers."""

import pytest

from repro.db import Database, DBTuple
from repro.query import parse_query
from repro.query.zoo import q_chain, q_sj1_rats, q_triangle, q_vc
from repro.resilience import (
    UnbreakableQueryError,
    is_contingency_set,
    resilience_branch_and_bound,
    resilience_exact,
    resilience_ilp,
)
from repro.workloads import random_database_for_query


class TestExactBasics:
    def test_chain_example(self, chain_db):
        """{t2, t3} is a minimum contingency set: rho = 2."""
        res = resilience_exact(chain_db, q_chain)
        assert res.value == 2
        assert is_contingency_set(chain_db, q_chain, set(res.contingency_set))

    def test_unsatisfied_database(self):
        db = Database()
        db.add("R", 1, 2)  # no consecutive pair
        db.add("R", 3, 4)
        assert resilience_exact(db, q_chain).value == 0

    def test_example_11(self, example_11_db):
        """Example 11: rho = 1 via R(1,2), beating {A(1), A(5)}."""
        res = resilience_exact(example_11_db, q_sj1_rats)
        assert res.value == 1
        assert res.contingency_set == frozenset({DBTuple("R", (1, 2))})

    def test_example_11_with_r_exogenous_needs_two(self, example_11_db):
        """Making R exogenous (as naive domination would) forces {A(1), A(5)}."""
        example_11_db.set_exogenous("R")
        res = resilience_exact(example_11_db, q_sj1_rats)
        assert res.value == 2

    def test_unbreakable_raises(self):
        q = parse_query("R^x(x,y)")
        db = Database()
        db.declare("R", 2, exogenous=True)
        db.add("R", 1, 2)
        with pytest.raises(UnbreakableQueryError):
            resilience_exact(db, q)

    def test_single_atom_query(self):
        q = parse_query("R(x,y)")
        db = Database()
        db.add_all("R", [(1, 2), (3, 4)])
        assert resilience_exact(db, q).value == 2

    def test_contingency_set_is_minimum(self, chain_db):
        res = resilience_exact(chain_db, q_chain)
        assert len(res.contingency_set) == res.value


class TestBackendsAgree:
    @pytest.mark.parametrize("seed", range(12))
    def test_bnb_equals_ilp_on_random_chain_dbs(self, seed):
        db = random_database_for_query(q_chain, domain_size=5, density=0.4, seed=seed)
        assert (
            resilience_branch_and_bound(db, q_chain).value
            == resilience_ilp(db, q_chain).value
        )

    @pytest.mark.parametrize("seed", range(8))
    def test_bnb_equals_ilp_on_random_triangle_dbs(self, seed):
        db = random_database_for_query(
            q_triangle, domain_size=4, density=0.5, seed=seed
        )
        assert (
            resilience_branch_and_bound(db, q_triangle).value
            == resilience_ilp(db, q_triangle).value
        )

    @pytest.mark.parametrize("seed", range(8))
    def test_bnb_equals_ilp_on_random_vc_dbs(self, seed):
        db = random_database_for_query(q_vc, domain_size=6, density=0.4, seed=seed)
        assert (
            resilience_branch_and_bound(db, q_vc).value
            == resilience_ilp(db, q_vc).value
        )

    def test_both_produce_valid_contingency_sets(self, chain_db):
        for solver in (resilience_branch_and_bound, resilience_ilp):
            res = solver(chain_db, q_chain)
            assert is_contingency_set(chain_db, q_chain, set(res.contingency_set))


class TestResilienceSemantics:
    @pytest.mark.parametrize("seed", range(6))
    def test_deletion_of_gamma_falsifies(self, seed):
        db = random_database_for_query(q_vc, domain_size=5, density=0.5, seed=seed)
        res = resilience_exact(db, q_vc)
        assert is_contingency_set(db, q_vc, set(res.contingency_set))

    @pytest.mark.parametrize("seed", range(6))
    def test_no_smaller_contingency_set_exists(self, seed):
        """Exhaustively verify minimality on small instances."""
        import itertools

        db = random_database_for_query(q_chain, domain_size=4, density=0.4, seed=seed)
        res = resilience_exact(db, q_chain)
        if res.value == 0:
            return
        endo = sorted(db.endogenous_tuples())
        for combo in itertools.combinations(endo, res.value - 1):
            assert not is_contingency_set(db, q_chain, set(combo))
