"""Tests for the linear-flow solver and the bespoke flow algorithms."""

import pytest

from repro.db import Database
from repro.query import parse_query
from repro.query.zoo import (
    q_A3perm_R,
    q_ACconf,
    q_Aperm,
    q_Swx3perm_R,
    q_TS3conf,
    q_lin,
    q_perm,
    q_rats,
    q_z3,
)
from repro.resilience import (
    LinearFlowSolver,
    resilience_exact,
    resilience_linear_flow,
)
from repro.resilience.flow_special import (
    solve_qACconf,
    solve_qAperm,
    solve_qA3perm_R,
    solve_qSwx3perm_R,
    solve_qTS3conf,
    solve_qperm,
    solve_qz3,
)
from repro.workloads import random_database_for_query

SEEDS = range(25)


class TestLinearFlow:
    def test_rejects_nonlinear_query(self):
        from repro.query.zoo import q_triangle

        with pytest.raises(ValueError):
            LinearFlowSolver(q_triangle)

    def test_unsatisfied_gives_zero(self):
        db = Database()
        db.declare("A", 1)
        db.declare("R", 3)
        db.declare("S", 2)
        assert resilience_linear_flow(db, q_lin).value == 0

    @pytest.mark.parametrize("seed", SEEDS)
    def test_qlin_flow_equals_exact(self, seed):
        db = random_database_for_query(q_lin, domain_size=4, density=0.4, seed=seed)
        flow = resilience_linear_flow(db, q_lin)
        exact = resilience_exact(db, q_lin)
        assert flow.value == exact.value

    @pytest.mark.parametrize("seed", SEEDS)
    def test_linear_sjfree_with_exogenous(self, seed):
        q = parse_query("A(x), H^x(x,y), B(y)")
        db = random_database_for_query(q, domain_size=5, density=0.5, seed=seed)
        from repro.query.evaluation import witness_tuple_sets

        if any(not s for s in witness_tuple_sets(db, q)):
            return  # unbreakable instance
        assert (
            resilience_linear_flow(db, q).value == resilience_exact(db, q).value
        )

    @pytest.mark.parametrize("seed", SEEDS)
    def test_confluence_duplicated_layers(self, seed):
        """Proposition 31: standard flow handles the 2-confluence."""
        db = random_database_for_query(
            q_ACconf, domain_size=5, density=0.4, seed=seed
        )
        flow = resilience_linear_flow(db, q_ACconf)
        exact = resilience_exact(db, q_ACconf)
        assert flow.value == exact.value

    def test_flow_contingency_set_valid(self):
        db = random_database_for_query(q_ACconf, domain_size=5, density=0.5, seed=3)
        from repro.resilience import is_contingency_set

        res = resilience_linear_flow(db, q_ACconf)
        if res.value:
            assert is_contingency_set(db, q_ACconf, set(res.contingency_set))


class TestSpecialFlows:
    """Every bespoke PTIME algorithm agrees with exact search."""

    @pytest.mark.parametrize("seed", SEEDS)
    def test_qperm(self, seed):
        db = random_database_for_query(q_perm, domain_size=5, density=0.4, seed=seed)
        assert solve_qperm(db).value == resilience_exact(db, q_perm).value

    @pytest.mark.parametrize("seed", SEEDS)
    def test_qAperm(self, seed):
        db = random_database_for_query(q_Aperm, domain_size=5, density=0.4, seed=seed)
        assert solve_qAperm(db).value == resilience_exact(db, q_Aperm).value

    @pytest.mark.parametrize("seed", SEEDS)
    def test_qACconf(self, seed):
        db = random_database_for_query(q_ACconf, domain_size=5, density=0.4, seed=seed)
        assert solve_qACconf(db).value == resilience_exact(db, q_ACconf).value

    @pytest.mark.parametrize("seed", SEEDS)
    def test_qA3perm_R(self, seed):
        db = random_database_for_query(
            q_A3perm_R, domain_size=5, density=0.35, seed=seed
        )
        assert solve_qA3perm_R(db).value == resilience_exact(db, q_A3perm_R).value

    @pytest.mark.parametrize("seed", SEEDS)
    def test_qSwx3perm_R(self, seed):
        db = random_database_for_query(
            q_Swx3perm_R, domain_size=5, density=0.3, seed=seed
        )
        assert (
            solve_qSwx3perm_R(db).value
            == resilience_exact(db, q_Swx3perm_R).value
        )

    @pytest.mark.parametrize("seed", SEEDS)
    def test_qz3(self, seed):
        db = random_database_for_query(q_z3, domain_size=5, density=0.45, seed=seed)
        assert solve_qz3(db).value == resilience_exact(db, q_z3).value

    @pytest.mark.parametrize("seed", SEEDS)
    def test_qTS3conf(self, seed):
        db = random_database_for_query(
            q_TS3conf, domain_size=4, density=0.4, seed=seed
        )
        assert (
            solve_qTS3conf(db, q_TS3conf).value
            == resilience_exact(db, q_TS3conf).value
        )

    def test_special_contingency_sets_valid(self):
        from repro.resilience import is_contingency_set

        for q, solver in [
            (q_perm, lambda db: solve_qperm(db)),
            (q_Aperm, lambda db: solve_qAperm(db)),
            (q_A3perm_R, lambda db: solve_qA3perm_R(db)),
        ]:
            db = random_database_for_query(q, domain_size=5, density=0.5, seed=7)
            res = solver(db)
            if res.value:
                assert is_contingency_set(db, q, set(res.contingency_set)), q.name
