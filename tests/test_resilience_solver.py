"""Tests for the dispatching solver (repro.resilience.solver)."""

import pytest

from repro.db import Database
from repro.query import parse_query
from repro.query.zoo import (
    q_ABperm,
    q_ACconf,
    q_Aperm,
    q_chain,
    q_comp,
    q_lin,
    q_perm,
    q_vc,
    q_z3,
)
from repro.resilience import resilience, resilience_exact, solve
from repro.resilience.solver import in_res
from repro.workloads import random_database_for_query


class TestDispatch:
    def test_special_solver_used_for_named_queries(self):
        db = random_database_for_query(q_ACconf, domain_size=4, density=0.5, seed=0)
        assert solve(db, q_ACconf).method == "flow:q_ACconf"

    def test_linear_flow_used_for_linear_sjfree(self):
        db = random_database_for_query(q_lin, domain_size=4, density=0.5, seed=0)
        assert solve(db, q_lin).method == "linear-flow"

    def test_exact_fallback_for_hard_queries(self):
        db = random_database_for_query(q_chain, domain_size=4, density=0.5, seed=0)
        assert solve(db, q_chain).method in ("branch-and-bound", "ilp")

    def test_unsatisfied_short_circuit(self):
        db = Database()
        db.declare("R", 2)
        res = solve(db, q_chain)
        assert res.value == 0 and res.method == "unsatisfied"

    def test_forced_methods(self, chain_db):
        assert solve(chain_db, q_chain, method="exact").value == 2
        with pytest.raises(ValueError):
            solve(chain_db, q_chain, method="nope")

    def test_resilience_helper(self, chain_db):
        assert resilience(chain_db, q_chain) == 2


class TestDispatchCorrectness:
    """Automatic dispatch always agrees with exact computation."""

    @pytest.mark.parametrize(
        "query",
        [q_ACconf, q_Aperm, q_perm, q_z3, q_lin, q_chain, q_vc, q_ABperm, q_comp],
        ids=lambda q: q.name,
    )
    @pytest.mark.parametrize("seed", range(6))
    def test_solve_equals_exact(self, query, seed):
        db = random_database_for_query(query, domain_size=4, density=0.45, seed=seed)
        assert solve(db, query).value == resilience_exact(db, query).value


class TestDecisionProblem:
    def test_in_res_definition(self, chain_db):
        """Definition 1: (D, k) in RES(q) iff D |= q and rho <= k."""
        assert not in_res(chain_db, q_chain, 1)
        assert in_res(chain_db, q_chain, 2)
        assert in_res(chain_db, q_chain, 3)

    def test_in_res_requires_satisfaction(self):
        db = Database()
        db.declare("R", 2)
        assert not in_res(db, q_chain, 100)
