"""End-to-end tests for the serving tier (``repro.serving``).

Everything here runs against a real :class:`ResilienceServer` on an
ephemeral localhost port — actual sockets, actual threads — because
the properties under test (coalescing, backpressure, streaming) only
exist under real concurrency.  The contracts:

* served answers are **bit-identical** to direct
  :func:`repro.resilience.solver.solve` calls, in all three modes;
* concurrent identical requests **provably coalesce** onto one solve
  (asserted by counting invocations of an injected solver, not by
  timing);
* streamed anytime intervals are monotone, certified (they always
  contain the exact value), and end on the returned result;
* admission control reroutes oversized exact requests to certified
  anytime intervals and sheds load with 429 rather than queueing.
"""

import json
import threading
import time

import pytest

from repro.db.database import Database
from repro.query.parser import parse_query
from repro.resilience.solver import solve
from repro.resilience.types import Budget
from repro.serving import (
    WIRE_SCHEMA,
    AdmissionPolicy,
    ResilienceServer,
    ServingClient,
    ServingClientError,
)


def chain_db(n=6):
    """A path database for q_chain: R(0,1), ..., R(n-1,n)."""
    db = Database()
    db.declare("R", 2)
    for i in range(n):
        db.add("R", i, i + 1)
    return db


def triangle_db():
    db = Database()
    db.declare("R", 2)
    for a, b in [("a", "b"), ("b", "c"), ("c", "a"), ("a", "c")]:
        db.add("R", a, b)
    return db


Q_CHAIN = parse_query("R(x,y), R(y,z)")


@pytest.fixture
def server():
    with ResilienceServer(port=0) as srv:
        yield srv


@pytest.fixture
def client(server):
    return ServingClient(server.address, timeout=60)


def _wait_until(predicate, timeout=10.0, message="condition"):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return
        time.sleep(0.005)
    raise AssertionError(f"timed out waiting for {message}")


class TestEndpoints:
    def test_health(self, client):
        payload = client.health()
        assert payload["status"] == "ok"
        from repro import __version__

        assert payload["version"] == __version__

    def test_metrics_counts_requests(self, client):
        before = client.metrics()["requests_total"]
        client.health()
        after = client.metrics()["requests_total"]
        assert after > before

    def test_unknown_path_is_404(self, client):
        status, payload = client.get("/nope")
        assert status == 404
        assert "error" in payload

    def test_unknown_post_path_is_404(self, client):
        status, payload, _ = client.post("/nope", b"{}")
        assert status == 404


class TestServedAnswersMatchDirectSolve:
    """The core contract: the daemon is a transparent proxy for solve()."""

    def test_exact_bit_identical(self, client):
        db = triangle_db()
        direct = solve(db, Q_CHAIN)
        served, meta = client.solve(db, Q_CHAIN)
        assert served == direct  # value, contingency set, AND method
        assert meta["mode"] == "exact"
        assert meta["rerouted"] is False

    def test_approx_bit_identical(self, client):
        db = triangle_db()
        direct = solve(db, Q_CHAIN, mode="approx")
        served, meta = client.solve(db, Q_CHAIN, mode="approx")
        assert served == direct
        assert meta["mode"] == "approx"

    def test_anytime_bit_identical(self, client):
        db = chain_db(8)
        budget = Budget(node_limit=50)
        direct = solve(db, Q_CHAIN, mode="anytime", budget=budget)
        served, _ = client.solve(db, Q_CHAIN, mode="anytime", budget=budget)
        assert served == direct

    def test_forced_method_bit_identical(self, client):
        db = chain_db(5)
        direct = solve(db, Q_CHAIN, method="exact")
        served, _ = client.solve(db, Q_CHAIN, method="exact")
        assert served == direct

    def test_batch_matches_direct_and_preserves_order(self, client):
        dbs = [chain_db(3), triangle_db(), chain_db(7)]
        expected = [solve(db, Q_CHAIN) for db in dbs]
        served, meta = client.solve_batch([(db, Q_CHAIN) for db in dbs])
        assert served == expected
        assert meta["stats"]["pairs"] == 3

    def test_unsatisfied_database(self, client):
        db = Database()
        db.declare("R", 2)
        db.add("R", 1, 2)  # no 2-chain
        served, _ = client.solve(db, Q_CHAIN)
        assert served.value == 0
        assert served == solve(db, Q_CHAIN)


class TestCoalescing:
    """Identical concurrent requests share exactly one solve."""

    def _gated_server(self, **kwargs):
        """A server whose solver blocks until we release it, counting
        invocations — coalescing becomes a provable fact, not a race."""
        gate = threading.Event()
        calls = []
        lock = threading.Lock()

        def gated_solve(db, q, **kw):
            with lock:
                calls.append(kw.get("mode", "exact"))
            assert gate.wait(timeout=30), "test gate never released"
            return solve(db, q, mode=kw.get("mode", "exact"),
                         method=kw.get("method"), budget=kw.get("budget"))

        server = ResilienceServer(port=0, solve_fn=gated_solve, **kwargs)
        return server, gate, calls

    def test_identical_requests_coalesce_to_one_solve(self):
        n_clients = 6
        server, gate, calls = self._gated_server()
        db = triangle_db()
        direct = solve(db, Q_CHAIN)
        results = [None] * n_clients
        metas = [None] * n_clients

        def worker(i):
            c = ServingClient(server.address, timeout=60)
            results[i], metas[i] = c.solve(db, Q_CHAIN)

        with server:
            threads = [
                threading.Thread(target=worker, args=(i,))
                for i in range(n_clients)
            ]
            for t in threads:
                t.start()
            # Followers park in the in-flight registry; once all are
            # there, exactly one leader is inside the solver.
            _wait_until(
                lambda: server.app.registry.waiters() == n_clients - 1,
                message="followers to park in the registry",
            )
            assert len(calls) == 1
            gate.set()
            for t in threads:
                t.join(timeout=30)
                assert not t.is_alive()

        assert len(calls) == 1, "coalescing must run the solver exactly once"
        assert all(r == direct for r in results), "all answers bit-identical"
        coalesced = [m["coalesced"] for m in metas]
        assert coalesced.count(False) == 1  # the leader
        assert coalesced.count(True) == n_clients - 1
        assert server.app.metrics.snapshot()["coalesced_total"] == n_clients - 1
        # The group is gone afterwards: nothing leaks.
        assert len(server.app.registry) == 0

    def test_distinct_requests_do_not_coalesce(self):
        server, gate, calls = self._gated_server()
        db_a, db_b = chain_db(3), chain_db(4)  # different contents
        results = {}

        def worker(name, db):
            c = ServingClient(server.address, timeout=60)
            results[name], _ = c.solve(db, Q_CHAIN)

        with server:
            ta = threading.Thread(target=worker, args=("a", db_a))
            tb = threading.Thread(target=worker, args=("b", db_b))
            ta.start(), tb.start()
            _wait_until(lambda: len(calls) == 2, message="both solves to start")
            gate.set()
            ta.join(timeout=30), tb.join(timeout=30)

        assert len(calls) == 2
        assert results["a"] == solve(db_a, Q_CHAIN)
        assert results["b"] == solve(db_b, Q_CHAIN)

    def test_same_pair_different_mode_does_not_coalesce(self):
        server, gate, calls = self._gated_server()
        db = triangle_db()
        done = []

        def worker(mode):
            c = ServingClient(server.address, timeout=60)
            done.append(c.solve(db, Q_CHAIN, mode=mode))

        with server:
            ta = threading.Thread(target=worker, args=("exact",))
            tb = threading.Thread(target=worker, args=("approx",))
            ta.start(), tb.start()
            _wait_until(lambda: len(calls) == 2, message="both modes to start")
            gate.set()
            ta.join(timeout=30), tb.join(timeout=30)
        assert sorted(calls) == ["approx", "exact"]

    def test_sequential_requests_do_not_coalesce_but_cache_serves(self, tmp_path):
        with ResilienceServer(port=0, cache_dir=tmp_path / "cache") as server:
            c = ServingClient(server.address, timeout=60)
            db = triangle_db()
            r1, m1 = c.solve(db, Q_CHAIN)
            r2, m2 = c.solve(db, Q_CHAIN)
            assert m1["cache"] == "miss"
            assert m2["cache"] == "hit"
            assert r1 == r2 == solve(db, Q_CHAIN)

    def test_cache_survives_restart(self, tmp_path):
        db = triangle_db()
        cache_dir = tmp_path / "cache"
        with ResilienceServer(port=0, cache_dir=cache_dir) as server:
            ServingClient(server.address, timeout=60).solve(db, Q_CHAIN)
        with ResilienceServer(port=0, cache_dir=cache_dir) as server:
            r, meta = ServingClient(server.address, timeout=60).solve(db, Q_CHAIN)
            assert meta["cache"] == "hit"
            assert r == solve(db, Q_CHAIN)


class TestStreaming:
    def test_stream_intervals_monotone_and_certified(self, client):
        db = chain_db(10)
        exact = solve(db, Q_CHAIN).value
        frames = list(client.stream_solve(db, Q_CHAIN))
        assert frames, "stream produced no frames"
        assert frames[-1]["event"] == "result"
        intervals = [f for f in frames if f["event"] == "interval"]
        assert intervals, "anytime stream published no intervals"
        prev_lb, prev_ub = 0, float("inf")
        for f in intervals:
            lb, ub = f["lower_bound"], f["upper_bound"]
            assert lb <= ub
            # Monotone tightening...
            assert lb >= prev_lb
            assert ub <= prev_ub
            # ...and every interval certified (contains the true value).
            assert lb <= exact <= ub
            prev_lb, prev_ub = lb, ub
        # Sequence numbers are contiguous from 1.
        assert [f["seq"] for f in intervals] == list(range(1, len(intervals) + 1))

    def test_stream_final_frame_matches_unstreamed_solve(self, client):
        db = chain_db(10)
        budget = Budget(node_limit=25)
        frames = list(client.stream_solve(db, Q_CHAIN, budget=budget))
        final = frames[-1]
        assert final["event"] == "result"
        direct = solve(db, Q_CHAIN, mode="anytime", budget=budget)
        assert final["result"] == direct
        # The last published interval is the result's interval.
        intervals = [f for f in frames if f["event"] == "interval"]
        last = intervals[-1]
        assert (last["lower_bound"], last["upper_bound"]) == direct.interval

    def test_stream_requires_anytime(self, client):
        payload = {
            "wire_schema": WIRE_SCHEMA,
            "database": {"relations": {"R": {"arity": 2, "tuples": [[1, 2]]}}},
            "query": "R(x,y), R(y,z)",
            "mode": "exact",
            "stream": True,
        }
        status, body, _ = client.post("/solve", json.dumps(payload).encode())
        assert status == 400
        assert "anytime" in body["error"]


class TestAdmissionControl:
    def test_oversized_exact_is_rerouted_to_anytime(self):
        policy = AdmissionPolicy(max_exact_tuples=3)
        with ResilienceServer(port=0, policy=policy) as server:
            c = ServingClient(server.address, timeout=60)
            db = chain_db(10)  # 10 endogenous tuples > 3
            result, meta = c.solve(db, Q_CHAIN)
            assert meta["rerouted"] is True
            assert meta["mode"] == "anytime"
            assert meta["tier"] == "batch"
            assert "reason" in meta and "endogenous" in meta["reason"]
            # The answer is still a certified interval around the truth.
            exact = solve(db, Q_CHAIN).value
            assert result.lower_bound <= exact <= result.upper_bound

    def test_small_exact_stays_interactive(self):
        policy = AdmissionPolicy(max_exact_tuples=1000)
        with ResilienceServer(port=0, policy=policy) as server:
            c = ServingClient(server.address, timeout=60)
            result, meta = c.solve(triangle_db(), Q_CHAIN)
            assert meta["rerouted"] is False
            assert meta["tier"] == "interactive"
            assert result == solve(triangle_db(), Q_CHAIN)

    def test_exogenous_tuples_are_free(self):
        policy = AdmissionPolicy(max_exact_tuples=5)
        db = Database()
        db.declare("R", 2)
        db.declare("W", 1, exogenous=True)
        for i in range(3):
            db.add("R", i, i + 1)
        for i in range(100):  # exogenous bulk must not trigger rerouting
            db.add("W", i)
        with ResilienceServer(port=0, policy=policy) as server:
            _, meta = ServingClient(server.address, timeout=60).solve(db, Q_CHAIN)
            assert meta["rerouted"] is False

    def test_oversized_anytime_budget_is_clamped(self):
        policy = AdmissionPolicy(
            max_exact_tuples=3, reroute_time_limit=0.5, reroute_node_limit=10
        )
        with ResilienceServer(port=0, policy=policy) as server:
            c = ServingClient(server.address, timeout=60)
            db = chain_db(10)
            # Requests an effectively unlimited budget; the server clamps it.
            _, meta = c.solve(db, Q_CHAIN, mode="anytime", budget=9999.0)
            assert meta["rerouted"] is True
            assert meta["budget"]["time_limit"] == 0.5
            assert meta["budget"]["node_limit"] == 10

    def test_backpressure_returns_429_with_retry_after(self):
        gate = threading.Event()

        def slow_solve(db, q, **kw):
            assert gate.wait(timeout=30)
            return solve(db, q)

        policy = AdmissionPolicy(max_concurrent_solves=1)
        server = ResilienceServer(port=0, policy=policy, solve_fn=slow_solve)
        db_a, db_b = chain_db(3), chain_db(4)
        first = {}

        def leader():
            c = ServingClient(server.address, timeout=60)
            first["result"], _ = c.solve(db_a, Q_CHAIN)

        with server:
            t = threading.Thread(target=leader)
            t.start()
            _wait_until(
                lambda: server.app.metrics.active_solves() == 1,
                message="first solve to occupy the gauge",
            )
            c2 = ServingClient(server.address, timeout=60)
            with pytest.raises(ServingClientError) as exc_info:
                c2.solve(db_b, Q_CHAIN)  # distinct key: cannot coalesce
            assert exc_info.value.status == 429
            assert exc_info.value.retry_after is not None
            gate.set()
            t.join(timeout=30)
        assert first["result"] == solve(db_a, Q_CHAIN)
        assert server.app.metrics.snapshot()["rejected_total"] == 1

    def test_batch_too_large_is_413(self):
        policy = AdmissionPolicy(max_batch_items=2)
        with ResilienceServer(port=0, policy=policy) as server:
            c = ServingClient(server.address, timeout=60)
            pairs = [(chain_db(3), Q_CHAIN)] * 3
            with pytest.raises(ServingClientError) as exc_info:
                c.solve_batch(pairs)
            assert exc_info.value.status == 413

    def test_oversized_batch_pair_reroutes_whole_batch(self):
        policy = AdmissionPolicy(max_exact_tuples=3)
        with ResilienceServer(port=0, policy=policy) as server:
            c = ServingClient(server.address, timeout=60)
            results, meta = c.solve_batch(
                [(chain_db(2), Q_CHAIN), (chain_db(10), Q_CHAIN)]
            )
            assert meta["rerouted"] is True
            assert meta["mode"] == "anytime"
            for (db, _), r in zip(
                [(chain_db(2), Q_CHAIN), (chain_db(10), Q_CHAIN)], results
            ):
                exact = solve(db, Q_CHAIN).value
                assert r.lower_bound <= exact <= r.upper_bound


class TestBatchWorkerPool:
    def test_batch_on_worker_pool_matches_serial(self):
        with ResilienceServer(port=0, workers=2) as server:
            c = ServingClient(server.address, timeout=120)
            dbs = [chain_db(n) for n in (3, 5, 7, 9)]
            expected = [solve(db, Q_CHAIN) for db in dbs]
            served, meta = c.solve_batch([(db, Q_CHAIN) for db in dbs])
            assert served == expected
            assert meta["stats"]["workers"] == 2
            # Pool persists across batches (reuse, not respawn).
            served2, _ = c.solve_batch([(db, Q_CHAIN) for db in dbs])
            assert served2 == expected
            assert server.app.pool is not None
