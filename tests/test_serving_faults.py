"""Fault injection for the serving tier and its persistence layer.

The serving stack's failure contract: every fault — a malformed body,
an exploding solver, a corrupted cache entry, a worker process killed
mid-solve — surfaces as a clean HTTP error (4xx/5xx) or a recomputed
answer, never as a wedged coalescing group, a poisoned cache key, or a
hung connection.  Concurrency faults are driven deterministically
(gated/exploding injected solvers, monkeypatched readers), not by
timing luck.

The ``ResultCache`` tests at the bottom are regression tests for two
latent races fixed alongside the serving tier:

* two processes writing the same key concurrently must both leave a
  valid entry behind (atomic-rename audit: ``.part`` temp files live
  outside the ``*.pkl`` entry namespace);
* a reader that fails validation must not blindly unlink the path —
  a concurrent writer may have just replaced it with a valid entry
  (guarded eviction by inode identity).
"""

import json
import multiprocessing
import os
import pickle
import threading

import pytest

from repro.db.database import Database
from repro.parallel import WorkerPool, build_shards, execute_shards
from repro.parallel.shards import PairTask
from repro.query.parser import parse_query
from repro.resilience.solver import solve
from repro.serving import (
    WIRE_SCHEMA,
    ResilienceServer,
    ServingClient,
    ServingClientError,
)
from repro.witness.cache import CACHE_SCHEMA, ResultCache, pair_cache_key

Q_CHAIN = parse_query("R(x,y), R(y,z)")


def chain_db(n=4):
    db = Database()
    db.declare("R", 2)
    for i in range(n):
        db.add("R", i, i + 1)
    return db


def _wait_until(predicate, timeout=10.0, message="condition"):
    import time

    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return
        time.sleep(0.005)
    raise AssertionError(f"timed out waiting for {message}")


# ---------------------------------------------------------------------------
# Malformed and hostile requests
# ---------------------------------------------------------------------------


class TestMalformedRequests:
    @pytest.fixture
    def client(self):
        with ResilienceServer(port=0) as server:
            yield ServingClient(server.address, timeout=30)

    def test_invalid_json_is_400(self, client):
        status, body, _ = client.post("/solve", b"{not json")
        assert status == 400
        assert "JSON" in body["error"]

    def test_empty_body_is_400(self, client):
        status, body, _ = client.post("/solve", b"")
        assert status == 400

    def test_non_object_payload_is_400(self, client):
        status, body, _ = client.post("/solve", b"[1, 2, 3]")
        assert status == 400

    def test_missing_wire_schema_is_400(self, client):
        status, body, _ = client.post("/solve", json.dumps({"query": "R(x,y)"}).encode())
        assert status == 400
        assert "wire_schema" in body["error"]

    def test_wrong_wire_schema_is_400(self, client):
        payload = {"wire_schema": 999, "database": {}, "query": "R(x,y)"}
        status, body, _ = client.post("/solve", json.dumps(payload).encode())
        assert status == 400
        assert "wire_schema" in body["error"]

    def test_unknown_mode_is_400(self, client):
        payload = {
            "wire_schema": WIRE_SCHEMA,
            "database": {"relations": {}},
            "query": "R(x,y)",
            "mode": "psychic",
        }
        status, body, _ = client.post("/solve", json.dumps(payload).encode())
        assert status == 400
        assert "mode" in body["error"]

    def test_arity_mismatch_is_400(self, client):
        payload = {
            "wire_schema": WIRE_SCHEMA,
            "database": {"relations": {"R": {"arity": 2, "tuples": [[1]]}}},
            "query": "R(x,y), R(y,z)",
        }
        status, body, _ = client.post("/solve", json.dumps(payload).encode())
        assert status == 400
        assert "arity" in body["error"]

    def test_unparseable_query_is_400(self, client):
        payload = {
            "wire_schema": WIRE_SCHEMA,
            "database": {"relations": {}},
            "query": ")))(((",
        }
        status, body, _ = client.post("/solve", json.dumps(payload).encode())
        assert status == 400

    def test_unknown_fields_are_400(self, client):
        payload = {
            "wire_schema": WIRE_SCHEMA,
            "database": {"relations": {}},
            "query": "R(x,y)",
            "frobnicate": True,
        }
        status, body, _ = client.post("/solve", json.dumps(payload).encode())
        assert status == 400
        assert "frobnicate" in body["error"]

    def test_batch_without_pairs_is_400(self, client):
        status, body, _ = client.post(
            "/solve_batch", json.dumps({"wire_schema": WIRE_SCHEMA, "pairs": []}).encode()
        )
        assert status == 400

    def test_missing_content_length_is_411(self, client):
        import http.client

        conn = http.client.HTTPConnection(client.host, client.port, timeout=30)
        try:
            # Hand-rolled request with no Content-Length header.
            conn.putrequest("POST", "/solve", skip_accept_encoding=True)
            conn.putheader("Content-Type", "application/json")
            conn.endheaders()
            resp = conn.getresponse()
            assert resp.status == 411
        finally:
            conn.close()

    def test_oversized_body_is_413(self):
        with ResilienceServer(port=0, max_body_bytes=1024) as server:
            client = ServingClient(server.address, timeout=30)
            big = json.dumps({"wire_schema": WIRE_SCHEMA, "blob": "x" * 10_000}).encode()
            status, body, _ = client.post("/solve", big)
            assert status == 413
            assert "exceeds" in body["error"]

    def test_server_survives_malformed_requests(self):
        """A barrage of garbage must not take the daemon down."""
        with ResilienceServer(port=0) as server:
            client = ServingClient(server.address, timeout=30)
            for payload in (b"", b"\x00\xff" * 50, b"{}", b'{"wire_schema":1}'):
                status, _, _ = client.post("/solve", payload)
                assert 400 <= status < 500
            # Still healthy and still solving.
            assert client.health()["status"] == "ok"
            db = chain_db()
            result, _ = client.solve(db, Q_CHAIN)
            assert result == solve(db, Q_CHAIN)
            assert client.metrics()["errors_total"] >= 4


# ---------------------------------------------------------------------------
# Solver failures under coalescing
# ---------------------------------------------------------------------------


class TestSolverFaults:
    def test_solver_exception_is_clean_500(self):
        def exploding(db, q, **kw):
            raise RuntimeError("kaboom")

        with ResilienceServer(port=0, solve_fn=exploding) as server:
            client = ServingClient(server.address, timeout=30)
            with pytest.raises(ServingClientError) as exc_info:
                client.solve(chain_db(), Q_CHAIN)
            assert exc_info.value.status == 500
            assert "kaboom" in str(exc_info.value)
            assert client.health()["status"] == "ok"

    def test_failure_propagates_to_coalesced_followers(self):
        """Every waiter gets the error; nobody hangs."""
        gate = threading.Event()
        calls = []

        def exploding(db, q, **kw):
            calls.append(1)
            assert gate.wait(timeout=30)
            raise RuntimeError("leader died")

        server = ResilienceServer(port=0, solve_fn=exploding)
        db = chain_db()
        statuses = []

        def worker():
            c = ServingClient(server.address, timeout=60)
            try:
                c.solve(db, Q_CHAIN)
                statuses.append(200)
            except ServingClientError as exc:
                statuses.append(exc.status)

        with server:
            threads = [threading.Thread(target=worker) for _ in range(4)]
            for t in threads:
                t.start()
            _wait_until(
                lambda: server.app.registry.waiters() == 3,
                message="followers to park",
            )
            gate.set()
            for t in threads:
                t.join(timeout=30)
                assert not t.is_alive(), "a waiter hung on a failed solve"
            assert statuses == [500, 500, 500, 500]
            assert len(calls) == 1

    def test_failure_does_not_poison_the_key(self):
        """After a failed solve, the next identical request runs fresh
        (the in-flight group is popped before the failure publishes)."""
        attempts = []

        def flaky(db, q, **kw):
            attempts.append(1)
            if len(attempts) == 1:
                raise RuntimeError("transient")
            return solve(db, q)

        with ResilienceServer(port=0, solve_fn=flaky) as server:
            client = ServingClient(server.address, timeout=30)
            db = chain_db()
            with pytest.raises(ServingClientError):
                client.solve(db, Q_CHAIN)
            # No wedged group left behind...
            assert len(server.app.registry) == 0
            # ...and the retry succeeds with the true answer.
            result, meta = client.solve(db, Q_CHAIN)
            assert result == solve(db, Q_CHAIN)
            assert len(attempts) == 2

    def test_follower_timeout_is_504(self):
        release = threading.Event()

        def stuck(db, q, **kw):
            assert release.wait(timeout=60)
            return solve(db, q)

        server = ResilienceServer(port=0, solve_fn=stuck, coalesce_timeout=0.2)
        db = chain_db()
        leader_status = []

        def leader():
            c = ServingClient(server.address, timeout=60)
            c.solve(db, Q_CHAIN)
            leader_status.append("ok")

        with server:
            t = threading.Thread(target=leader)
            t.start()
            _wait_until(
                lambda: server.app.metrics.active_solves() == 1,
                message="leader to start solving",
            )
            follower = ServingClient(server.address, timeout=60)
            with pytest.raises(ServingClientError) as exc_info:
                follower.solve(db, Q_CHAIN)
            assert exc_info.value.status == 504
            release.set()
            t.join(timeout=30)
        assert leader_status == ["ok"], "the leader itself must still finish"


# ---------------------------------------------------------------------------
# Worker-process faults
# ---------------------------------------------------------------------------


def _die():
    """Submitted to a worker to simulate a hard crash mid-solve."""
    os._exit(1)


class TestWorkerFaults:
    def test_pool_breakage_is_detected_and_recovered(self):
        from concurrent.futures.process import BrokenProcessPool

        pool = WorkerPool(workers=2)
        try:
            # Healthy first: real shards execute on the pool (two tasks
            # over distinct databases -> two shards, so the pool is
            # actually exercised rather than the in-process fast path).
            db_a, db_b = chain_db(4), chain_db(6)
            shards = build_shards(
                [[PairTask(0, db_a, Q_CHAIN)], [PairTask(1, db_b, Q_CHAIN)]],
                n_shards=2,
            )
            expected = {0: solve(db_a, Q_CHAIN).value, 1: solve(db_b, Q_CHAIN).value}
            outcomes, _ = execute_shards(shards, workers=2, pool=pool)
            assert {tid: r.value for tid, r in outcomes.items()} == expected

            # Kill a worker mid-"solve".
            with pytest.raises(BrokenProcessPool):
                pool.executor().submit(_die).result(timeout=30)

            # The next lease detects the broken executor and replaces it.
            outcomes, _ = execute_shards(shards, workers=2, pool=pool)
            assert {tid: r.value for tid, r in outcomes.items()} == expected
        finally:
            pool.shutdown()

    def test_batch_endpoint_survives_pool_breakage(self):
        with ResilienceServer(port=0, workers=2) as server:
            client = ServingClient(server.address, timeout=120)
            db = chain_db(4)
            results, _ = client.solve_batch([(db, Q_CHAIN)])
            assert results[0] == solve(db, Q_CHAIN)

            # Crash a worker process out from under the server's pool.
            from concurrent.futures.process import BrokenProcessPool

            with pytest.raises(BrokenProcessPool):
                server.app.pool.executor().submit(_die).result(timeout=30)

            # The served batch path recovers on the replacement pool.
            results, _ = client.solve_batch([(db, Q_CHAIN)])
            assert results[0] == solve(db, Q_CHAIN)
            assert client.health()["status"] == "ok"


# ---------------------------------------------------------------------------
# ResultCache corruption and write races
# ---------------------------------------------------------------------------


def _writer_process(cache_dir, key, value, barrier_dir, n_rounds):
    """Hammer ``put`` on one key (two of these race each other)."""
    cache = ResultCache(cache_dir)
    for _ in range(n_rounds):
        cache.put(key, value)


class TestResultCacheFaults:
    def test_corrupt_entry_is_evicted_and_recomputed(self, tmp_path):
        db = chain_db()
        key = pair_cache_key(db, Q_CHAIN)
        with ResilienceServer(port=0, cache_dir=tmp_path) as server:
            client = ServingClient(server.address, timeout=30)
            client.solve(db, Q_CHAIN)  # populate
            path = server.app.cache._path(key)
            assert path.exists()
            path.write_bytes(b"\x00garbage\xff")  # corrupt it in place

            result, meta = client.solve(db, Q_CHAIN)
            assert meta["cache"] == "miss", "corrupt entry must not be served"
            assert result == solve(db, Q_CHAIN)
            # The rewrite healed the entry.
            result2, meta2 = client.solve(db, Q_CHAIN)
            assert meta2["cache"] == "hit"
            assert result2 == result

    def test_wrong_key_entry_is_rejected(self, tmp_path):
        """An entry whose embedded key mismatches its filename (e.g. a
        renamed file) is a miss, not a wrong answer."""
        cache = ResultCache(tmp_path)
        cache.put("key-a", "value-a")
        os.replace(cache._path("key-a"), cache._path("key-b"))
        assert cache.get("key-b") is None
        assert not cache._path("key-b").exists()

    def test_schema_drift_is_rejected(self, tmp_path):
        cache = ResultCache(tmp_path)
        with open(cache._path("k"), "wb") as handle:
            pickle.dump((CACHE_SCHEMA + 1, "k", "stale"), handle)
        assert cache.get("k") is None

    def test_two_process_writers_leave_a_valid_entry(self, tmp_path):
        """The atomic-rename regression: two processes racing ``put`` on
        the same key must both land on a readable entry — no torn file,
        no visible temp debris."""
        key = "contested-key"
        ctx = multiprocessing.get_context("fork")
        procs = [
            ctx.Process(
                target=_writer_process,
                args=(str(tmp_path), key, f"value-{i}", None, 200),
            )
            for i in range(2)
        ]
        for p in procs:
            p.start()
        reader = ResultCache(tmp_path)
        # Read concurrently with the write storm: every successful read
        # must be one of the two valid values, never garbage.
        seen = set()
        while any(p.is_alive() for p in procs):
            value = reader.get(key)
            if value is not None:
                seen.add(value)
        for p in procs:
            p.join(timeout=60)
            assert p.exitcode == 0
        assert seen <= {"value-0", "value-1"}
        # Afterwards: exactly one valid entry, no temp debris.
        final = reader.get(key)
        assert final in {"value-0", "value-1"}
        assert len(list(tmp_path.glob(".tmp-*"))) == 0
        assert len(reader) == 1

    def test_temp_files_are_outside_the_entry_namespace(self, tmp_path):
        """`.part` temp files must be invisible to the `*.pkl` namespace
        (`__len__`, `clear`) — the root cause of the original race."""
        cache = ResultCache(tmp_path)
        cache.put("real", 42)
        # Simulate a writer dying mid-put: a stale temp file remains.
        stale = tmp_path / ".tmp-deadbeef.part"
        stale.write_bytes(b"half a pickle")
        assert len(cache) == 1, "temp files must not count as entries"
        cache.clear()
        assert not stale.exists(), "clear() sweeps stale temp files"
        assert cache.get("real") is None

    def test_failed_read_does_not_evict_concurrent_rewrite(self, tmp_path, monkeypatch):
        """The guarded-eviction regression, deterministically: between a
        reader's failed validation and its eviction attempt, a writer
        replaces the entry — the fresh entry must survive."""
        cache = ResultCache(tmp_path)
        key = "k"
        path = cache._path(key)
        path.write_bytes(b"corrupt")

        real_load = pickle.load

        def load_then_lose_the_race(handle):
            # The "concurrent writer" lands a valid entry while this
            # reader is mid-validation of the corrupt one.
            ResultCache(tmp_path).put(key, "fresh")
            return real_load(handle)

        monkeypatch.setattr(pickle, "load", load_then_lose_the_race)
        assert cache.get(key) is None  # the corrupt read is still a miss
        monkeypatch.undo()
        # But the racing writer's entry survived the eviction attempt.
        assert cache.get(key) == "fresh"

    def test_blind_eviction_still_removes_stable_corruption(self, tmp_path):
        """Sanity check the other side: with no racing writer, a corrupt
        entry IS removed so the next write starts clean."""
        cache = ResultCache(tmp_path)
        path = cache._path("k")
        path.write_bytes(b"corrupt")
        assert cache.get("k") is None
        assert not path.exists()
