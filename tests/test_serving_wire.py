"""Property tests for the serving wire schema (``repro.serving.wire``).

The property that matters is not JSON prettiness but *key stability*:
decoding an encoded request must reproduce solver arguments whose
:func:`~repro.witness.cache.pair_cache_key` is bit-identical to the
original's.  That key equality is what licenses request coalescing and
the shared result cache — if the codec ever drifted (lost a tuple,
reordered meaningfully, coerced a budget), two "identical" requests
could stop being identical, or worse, two *different* requests could
collide.

Every round trip goes through real ``json.dumps``/``json.loads`` so
the bytes on the wire, not just the Python dicts, are exercised.
Relation names ending in ``x`` get a dedicated regression strategy:
the Datalog surface syntax reads a trailing ``x`` as the exogenous
marker (``Tx(a)`` parses as ``T^x(a)``), which is exactly why requests
travel structurally.
"""

import json

import pytest
from hypothesis import given, strategies as st

from repro.db.database import Database
from repro.db.tuples import DBTuple
from repro.query.atom import Atom
from repro.query.cq import ConjunctiveQuery
from repro.resilience.types import (
    BoundedResilienceResult,
    Budget,
    ResilienceResult,
)
from repro.serving.wire import (
    WIRE_SCHEMA,
    SolveRequest,
    WireError,
    budget_from_spec,
    budget_to_spec,
    database_from_spec,
    database_to_spec,
    decode_request,
    decode_result,
    encode_request,
    encode_result,
    query_from_spec,
    query_to_spec,
)
from repro.witness.cache import pair_cache_key

# ---------------------------------------------------------------------------
# Strategies
# ---------------------------------------------------------------------------

# Relation names deliberately include trailing-x names (the parser
# ambiguity) and single letters.
relation_names = st.sampled_from(["R", "S", "T", "Tx", "Ax", "Wxx", "Rel"])

# Scalar values JSON can carry losslessly; composite values are nested
# tuples (JSON arrays on the wire).  Floats are excluded: the solvers
# never produce float constants and NaN breaks equality.
scalar_values = st.one_of(
    st.integers(min_value=-10, max_value=10),
    st.text(alphabet="abcxyz", min_size=0, max_size=4),
    st.booleans(),
    st.none(),
)
tuple_values = st.recursive(
    scalar_values,
    lambda children: st.lists(children, min_size=1, max_size=3).map(tuple),
    max_leaves=4,
)

variables = st.sampled_from(["x", "y", "z", "u", "v", "w"])


@st.composite
def databases(draw):
    db = Database()
    names = draw(
        st.lists(relation_names, min_size=1, max_size=3, unique=True)
    )
    for name in names:
        arity = draw(st.integers(min_value=1, max_value=3))
        exogenous = draw(st.booleans())
        db.declare(name, arity, exogenous=exogenous)
        rows = draw(
            st.lists(
                st.tuples(*([tuple_values] * arity)), min_size=0, max_size=5
            )
        )
        for row in rows:
            db.add(name, *row)
    return db


@st.composite
def queries(draw):
    n_atoms = draw(st.integers(min_value=1, max_value=3))
    # The exogenous flag must be consistent per relation across atoms.
    flags = {}
    atoms = []
    for _ in range(n_atoms):
        name = draw(relation_names)
        arity = draw(st.integers(min_value=1, max_value=3))
        if name not in flags:
            flags[name] = draw(st.booleans())
        args = tuple(draw(variables) for _ in range(arity))
        atoms.append(Atom(name, args, exogenous=flags[name]))
    # Atoms of one relation must agree on arity too; regenerate arity
    # clashes away by keying on (name -> arity).
    arities = {}
    fixed = []
    for atom in atoms:
        arity = arities.setdefault(atom.relation, atom.arity)
        args = (atom.args * 3)[:arity]
        fixed.append(Atom(atom.relation, args, exogenous=atom.exogenous))
    name = draw(st.one_of(st.none(), st.sampled_from(["q", "q_test"])))
    return ConjunctiveQuery(fixed, name=name)


budgets = st.one_of(
    st.none(),
    st.floats(min_value=0.01, max_value=100, allow_nan=False).map(
        lambda s: Budget(time_limit=s)
    ),
    st.builds(
        Budget,
        time_limit=st.one_of(
            st.none(), st.floats(min_value=0.01, max_value=100, allow_nan=False)
        ),
        node_limit=st.one_of(st.none(), st.integers(min_value=0, max_value=10**6)),
    ),
)


@st.composite
def solve_requests(draw):
    mode = draw(st.sampled_from(["exact", "approx", "anytime"]))
    method = draw(st.sampled_from([None, "exact", "flow"])) if mode == "exact" else None
    budget = draw(budgets) if mode == "anytime" else None
    return SolveRequest(
        database=draw(databases()),
        query=draw(queries()),
        mode=mode,
        method=method,
        budget=budget,
        stream=draw(st.booleans()) if mode == "anytime" else False,
    )


def json_round_trip(payload):
    """Actual bytes on the wire, not just dict identity."""
    return json.loads(json.dumps(payload))


# ---------------------------------------------------------------------------
# Round-trip properties
# ---------------------------------------------------------------------------


class TestDatabaseRoundTrip:
    @given(databases())
    def test_database_round_trip_is_equal(self, db):
        spec = json_round_trip(database_to_spec(db))
        assert database_from_spec(spec) == db

    @given(databases())
    def test_encoding_is_deterministic(self, db):
        # Canonical ordering: equal databases produce byte-equal specs.
        a = json.dumps(database_to_spec(db), sort_keys=True)
        b = json.dumps(database_to_spec(db.copy()), sort_keys=True)
        assert a == b


class TestQueryRoundTrip:
    @given(queries())
    def test_query_round_trip_preserves_signature(self, query):
        spec = json_round_trip(query_to_spec(query))
        back = query_from_spec(spec)
        assert back.canonical_signature() == query.canonical_signature()
        assert [a.signature() for a in back.atoms] == [
            a.signature() for a in query.atoms
        ]
        assert [a.exogenous for a in back.atoms] == [
            a.exogenous for a in query.atoms
        ]

    def test_trailing_x_relation_survives_structurally(self):
        """The parser reads "Tx(a)" as exogenous T; the structural wire
        form must not (the regression that forces structural transport)."""
        query = ConjunctiveQuery([Atom("Tx", ("a",), exogenous=False)])
        back = query_from_spec(json_round_trip(query_to_spec(query)))
        assert back.atoms[0].relation == "Tx"
        assert back.atoms[0].exogenous is False

    def test_exogenous_trailing_x_also_survives(self):
        query = ConjunctiveQuery([Atom("Tx", ("a",), exogenous=True)])
        back = query_from_spec(json_round_trip(query_to_spec(query)))
        assert back.atoms[0].relation == "Tx"
        assert back.atoms[0].exogenous is True

    def test_text_queries_accepted_on_input(self):
        q = query_from_spec("R(x,y), R(y,z)")
        assert len(q.atoms) == 2


class TestBudgetRoundTrip:
    @given(budgets)
    def test_budget_round_trip(self, budget):
        spec = json_round_trip(budget_to_spec(budget))
        assert budget_from_spec(spec) == (budget if budget is not None else None)

    def test_bare_seconds_accepted(self):
        assert budget_from_spec(2.5) == Budget(time_limit=2.5)

    @pytest.mark.parametrize(
        "bad", [-1, 0, True, "fast", {"time_limit": -3}, {"nodes": 5}, [1]]
    )
    def test_malformed_budgets_rejected(self, bad):
        with pytest.raises(WireError):
            budget_from_spec(bad)


class TestRequestRoundTrip:
    @given(solve_requests())
    def test_request_round_trip_preserves_pair_cache_key(self, request):
        """THE coalescing-safety property: the decoded request maps to
        the same cache key as the original, bit for bit."""
        decoded = decode_request(json_round_trip(encode_request(request)))
        original_key = pair_cache_key(
            request.database,
            request.query,
            mode=request.mode,
            method=request.method,
            budget=request.budget,
        )
        decoded_key = pair_cache_key(
            decoded.database,
            decoded.query,
            mode=decoded.mode,
            method=decoded.method,
            budget=decoded.budget,
        )
        assert decoded_key == original_key
        assert decoded.database == request.database
        assert decoded.mode == request.mode
        assert decoded.method == request.method
        assert decoded.budget == request.budget
        assert decoded.stream == request.stream

    @given(solve_requests())
    def test_double_encode_is_stable(self, request):
        once = encode_request(request)
        twice = encode_request(decode_request(json_round_trip(once)))
        assert json.dumps(once, sort_keys=True) == json.dumps(twice, sort_keys=True)

    def test_schema_salt_missing_is_rejected(self):
        payload = encode_request(
            SolveRequest(Database(), ConjunctiveQuery([Atom("R", ("x",))]))
        )
        del payload["wire_schema"]
        with pytest.raises(WireError, match="wire_schema"):
            decode_request(payload)

    @pytest.mark.parametrize("salt", [0, WIRE_SCHEMA + 1, "1", None, -1])
    def test_schema_salt_mismatch_is_rejected(self, salt):
        payload = encode_request(
            SolveRequest(Database(), ConjunctiveQuery([Atom("R", ("x",))]))
        )
        payload["wire_schema"] = salt
        with pytest.raises(WireError, match="wire_schema"):
            decode_request(payload)

    def test_budget_on_exact_mode_is_rejected(self):
        payload = encode_request(
            SolveRequest(Database(), ConjunctiveQuery([Atom("R", ("x",))]))
        )
        payload["budget"] = 5.0
        with pytest.raises(WireError, match="budget"):
            decode_request(payload)

    def test_method_on_bounded_mode_is_rejected(self):
        payload = encode_request(
            SolveRequest(Database(), ConjunctiveQuery([Atom("R", ("x",))]))
        )
        payload["mode"] = "approx"
        payload["method"] = "flow"
        with pytest.raises(WireError, match="method"):
            decode_request(payload)


# ---------------------------------------------------------------------------
# Result round trips
# ---------------------------------------------------------------------------

contingency_sets = st.frozensets(
    st.builds(
        DBTuple,
        relation_names,
        st.tuples(tuple_values, tuple_values),
    ),
    max_size=5,
)


class TestResultRoundTrip:
    @given(
        st.integers(min_value=0, max_value=50),
        contingency_sets,
        st.sampled_from(["ilp", "branch-and-bound", "linear-flow", ""]),
    )
    def test_exact_result_round_trip(self, value, gamma, method):
        result = ResilienceResult(value, gamma, method=method)
        back = decode_result(json_round_trip(encode_result(result)))
        assert back == result

    @given(
        st.integers(min_value=0, max_value=50),
        st.integers(min_value=0, max_value=50),
        contingency_sets,
        st.sampled_from(["anytime", "lp+greedy", ""]),
    )
    def test_bounded_result_round_trip(self, lb, extra, gamma, method):
        result = BoundedResilienceResult(lb, lb + extra, gamma, method=method)
        back = decode_result(json_round_trip(encode_result(result)))
        assert back == result
        assert back.interval == result.interval
        assert back.is_exact == result.is_exact

    def test_unknown_result_kind_rejected(self):
        with pytest.raises(WireError, match="kind"):
            decode_result({"kind": "mystery", "value": 3})


# ---------------------------------------------------------------------------
# Value-edge coverage the generators might miss
# ---------------------------------------------------------------------------


class TestValueEdgeCases:
    def test_nested_tuple_values_round_trip(self):
        db = Database()
        db.declare("R", 2)
        db.add("R", (1, (2, "a")), None)
        assert database_from_spec(json_round_trip(database_to_spec(db))) == db

    def test_unary_scalar_rows_accepted(self):
        spec = {"relations": {"A": {"arity": 1, "tuples": [1, 2, 3]}}}
        assert len(database_from_spec(spec)) == 3

    @pytest.mark.parametrize(
        "bad",
        [
            "not an object",
            {"relations": []},
            {"relations": {"R": {"arity": 0, "tuples": []}}},
            {"relations": {"R": {"arity": "two", "tuples": []}}},
            {"relations": {"R": {"arity": True, "tuples": []}}},
            {"relations": {"R": {"arity": 2, "exogenous": "yes", "tuples": []}}},
            {"relations": {"R": {"arity": 2, "tuples": [[1]]}}},
            {"relations": {"R": {"arity": 1, "tuples": [{"v": 1}]}}},
        ],
    )
    def test_malformed_database_specs_rejected(self, bad):
        with pytest.raises(WireError):
            database_from_spec(bad)

    @pytest.mark.parametrize(
        "bad",
        [
            {},
            {"atoms": []},
            {"atoms": "R(x)"},
            {"atoms": [{"relation": "", "args": ["x"]}]},
            {"atoms": [{"relation": "R", "args": []}]},
            {"atoms": [{"relation": "R", "args": [1]}]},
            {"atoms": [{"relation": "R", "args": ["x"], "exogenous": "yes"}]},
            # Inconsistent exogenous flags across occurrences.
            {
                "atoms": [
                    {"relation": "R", "args": ["x"], "exogenous": True},
                    {"relation": "R", "args": ["y"], "exogenous": False},
                ]
            },
        ],
    )
    def test_malformed_query_specs_rejected(self, bad):
        with pytest.raises(WireError):
            query_from_spec(bad)
