"""Tests for the batch-solving API (repro.core.solve_batch)."""

import pytest

from repro.core import BatchResult, solve_batch
from repro.query.zoo import ALL_QUERIES
from repro.resilience import resilience_exact, solve
from repro.witness import clear_witness_cache
from repro.workloads import (
    random_database_for_queries,
    random_database_for_query,
)

# A dispatch-diverse mix over one shared vocabulary (A, C unary; R
# binary): exact NP-hard cases, bespoke specials, and flow queries.
SHARED_VOCAB_QUERIES = (
    "q_chain",
    "q_conf",
    "q_perm",
    "q_Aperm",
    "q_ACconf",
    "q_z3",
    "q_sj1_rats",
    "q_a_chain",
)


def _shared_workload(n_dbs, domain_size=4, density=0.45):
    queries = [ALL_QUERIES[n] for n in SHARED_VOCAB_QUERIES]
    dbs = [
        random_database_for_queries(
            queries, domain_size=domain_size, density=density, seed=seed
        )
        for seed in range(n_dbs)
    ]
    return [(db, q) for db in dbs for q in queries]


class TestSolveBatch:
    def test_matches_per_pair_solve_on_200_randomized_pairs(self):
        """Acceptance: >= 200 randomized pairs, identical values/methods."""
        pairs = _shared_workload(25)
        assert len(pairs) == 200
        clear_witness_cache()
        batch = solve_batch(pairs)
        singles = [solve(db, q) for db, q in pairs]
        assert batch.values() == [r.value for r in singles]
        assert [r.method for r in batch] == [r.method for r in singles]

    def test_preprocessed_exact_matches_seed_style_unreduced_search(self):
        """Acceptance: reductions never change the exact optimum."""
        from repro.witness import WitnessStructure
        from repro.resilience import resilience_branch_and_bound

        pairs = _shared_workload(6)
        checked = 0
        for db, q in pairs:
            ws = WitnessStructure.build(db, q)
            if not ws.satisfied:
                continue
            unreduced = WitnessStructure.build(db, q, reduce=False)
            seed_style = resilience_branch_and_bound(db, q, structure=unreduced)
            assert resilience_exact(db, q, structure=ws).value == seed_style.value
            checked += 1
        assert checked > 20

    def test_results_in_input_order(self):
        q_chain = ALL_QUERIES["q_chain"]
        q_perm = ALL_QUERIES["q_perm"]
        db = random_database_for_query(q_chain, domain_size=4, density=0.5, seed=1)
        pairs = [(db, q_perm), (db, q_chain), (db, q_perm)]
        batch = solve_batch(pairs)
        assert len(batch) == 3
        assert batch[0].value == solve(db, q_perm).value
        assert batch[1].value == solve(db, q_chain).value

    def test_duplicate_pairs_are_memoized(self):
        q = ALL_QUERIES["q_chain"]
        db = random_database_for_query(q, domain_size=4, density=0.5, seed=3)
        batch = solve_batch([(db, q)] * 5)
        assert batch.stats.pairs == 5
        assert batch.stats.unique_pairs == 1
        assert all(r is batch[0] for r in batch)

    def test_method_forcing(self):
        q = ALL_QUERIES["q_perm"]
        db = random_database_for_query(q, domain_size=4, density=0.5, seed=2)
        batch = solve_batch([(db, q)], method="exact")
        assert batch[0].method in ("branch-and-bound", "ilp")
        assert batch[0].value == resilience_exact(db, q).value

    def test_stats_accounting(self):
        pairs = _shared_workload(4)
        clear_witness_cache()
        batch = solve_batch(pairs)
        stats = batch.stats
        assert stats.pairs == len(pairs)
        assert sum(stats.methods.values()) == len(pairs)
        assert stats.time_total > 0
        # Exact-path pairs produced witness structures with stats.
        assert stats.structures > 0
        assert stats.reductions.witnesses_raw >= stats.reductions.witnesses_final
        assert any("pairs:" in line for line in stats.summary_lines())

    def test_empty_batch(self):
        batch = solve_batch([])
        assert isinstance(batch, BatchResult)
        assert len(batch) == 0
        assert batch.stats.pairs == 0


class TestSharedVocabularyWorkload:
    def test_conflicting_arity_rejected(self):
        with pytest.raises(ValueError):
            random_database_for_queries(
                [ALL_QUERIES["q_chain"], ALL_QUERIES["q_vc"]], seed=0
            )

    def test_declares_union_vocabulary(self):
        queries = [ALL_QUERIES[n] for n in SHARED_VOCAB_QUERIES]
        db = random_database_for_queries(queries, seed=0)
        expected = set()
        for q in queries:
            expected |= q.relation_names()
        assert set(db.relations) == expected
