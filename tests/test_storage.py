"""Out-of-core storage: layout, read-only handles, and backend equivalence.

Three layers of protection for :mod:`repro.storage`:

* **layout** — the on-disk format is versioned, atomic, and validating:
  partial snapshots are never observable, incompatible layouts and
  malformed inputs (duplicate rows, non-int/str constants, unordered
  relations) are refused loudly, and the ingest digest equals the
  source database's :meth:`~repro.db.database.Database.content_digest`
  bit for bit;
* **handles** — :class:`~repro.storage.StoredDatabase` is read-only
  (in-place mutation raises), pickles by path (task payloads stay O(1)
  in the database size), and ``minus`` materializes;
* **equivalence** — across the same 8-family × seed matrix the
  weighted differential suite uses, the memmap-backed and in-memory
  backends must produce bit-identical witness incidence matrices,
  bit-identical kernels (universe, forced set, surviving witness
  sets), and equal resilience values (Definition 1) in both weighted
  and unweighted modes — plus an RSS-ceiling harness proving the
  out-of-core path actually bounds memory (skipped where
  ``resource`` is unavailable).
"""

import json
import os
import pickle
import random
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

from repro.db.database import Database
from repro.db.tuples import DBTuple
from repro.query.columnar import columnar_witness_incidence
from repro.query.zoo import ALL_QUERIES
from repro.resilience.exact import is_contingency_set
from repro.resilience.solver import solve
from repro.resilience.types import UnbreakableQueryError
from repro.storage import (
    LAYOUT_VERSION,
    ReadOnlyStorageError,
    SnapshotLayoutError,
    SnapshotWriter,
    ingest_database,
    open_snapshot,
    open_stored_database,
)
from repro.witness import clear_witness_cache, witness_structure
from repro.workloads import assign_skewed_costs, random_database_for_query

# The same 8 zoo families the weighted differential matrix runs
# (tests/test_weighted_backends.py); fewer seeds since every instance
# is ingested to disk and solved four ways.
FAMILIES = (
    "q_perm",
    "q_Aperm",
    "q_lin",
    "q_chain",
    "q_3chain",
    "q_sj1_rats",
    "q_conf",
    "q_triangle_sj1",
)
SEEDS_PER_FAMILY = 6


def _instance(name, seed):
    """One deterministic skewed-cost instance (same recipe as the
    weighted matrix, so the two suites cover the same population)."""
    query = ALL_QUERIES[name]
    rng = random.Random((hash(name) & 0xFFFF) * 1000 + seed)
    db = random_database_for_query(
        query,
        domain_size=rng.randint(4, 5),
        density=rng.uniform(0.3, 0.5),
        rng=rng,
    )
    assign_skewed_costs(db, rng=rng, max_cost=9)
    return db, query


def _stored(db, tmp_path, tag):
    return open_stored_database(ingest_database(db, tmp_path / tag))


# ---------------------------------------------------------------------------
# Layout
# ---------------------------------------------------------------------------

class TestLayout:
    def test_ingest_digest_matches_content_digest(self, tmp_path):
        for name, seed in (("q_chain", 0), ("q_Aperm", 1)):
            db, _ = _instance(name, seed)
            stored = _stored(db, tmp_path, f"{name}-{seed}")
            assert stored.content_digest() == db.content_digest()
            assert stored.canonical_text() == db.canonical_text()

    def test_streaming_writer_digest_matches_ingest(self, tmp_path):
        db, _ = _instance("q_chain", 2)
        writer = SnapshotWriter(tmp_path / "streamed")
        for name in sorted(db.relations):
            rel = db.relations[name]
            costs = (
                {t.values: rel.cost(t) for t in rel}
                if rel.has_weighted_costs
                else None
            )
            writer.add_relation(
                name,
                rel.arity,
                (t.values for t in rel),
                exogenous=rel.exogenous,
                costs=costs,
            )
        writer.commit()
        stored = open_stored_database(tmp_path / "streamed")
        assert stored.content_digest() == db.content_digest()

    def test_target_exists_is_refused_without_overwrite(self, tmp_path):
        db, _ = _instance("q_chain", 0)
        ingest_database(db, tmp_path / "snap")
        with pytest.raises(SnapshotLayoutError):
            ingest_database(db, tmp_path / "snap")
        ingest_database(db, tmp_path / "snap", overwrite=True)

    def test_abort_leaves_no_staging_directory(self, tmp_path):
        writer = SnapshotWriter(tmp_path / "aborted")
        writer.add_relation("R", 2, [(1, 2)])
        writer.abort()
        assert list(tmp_path.iterdir()) == []

    def test_failed_add_is_not_observable(self, tmp_path):
        writer = SnapshotWriter(tmp_path / "bad")
        with pytest.raises(SnapshotLayoutError):
            writer.add_relation("R", 2, [(1, 2), (3,)])
        writer.abort()
        assert not (tmp_path / "bad").exists()

    def test_incompatible_layout_version_is_refused(self, tmp_path):
        db, _ = _instance("q_chain", 0)
        path = ingest_database(db, tmp_path / "snap")
        manifest = json.loads((path / "manifest.json").read_text())
        manifest["layout"] = LAYOUT_VERSION + 1
        (path / "manifest.json").write_text(json.dumps(manifest))
        with pytest.raises(SnapshotLayoutError, match="layout"):
            open_snapshot(path)

    def test_non_snapshot_directory_is_refused(self, tmp_path):
        with pytest.raises(SnapshotLayoutError):
            open_snapshot(tmp_path)

    def test_duplicate_rows_are_rejected(self, tmp_path):
        writer = SnapshotWriter(tmp_path / "dup")
        with pytest.raises(SnapshotLayoutError, match="duplicate"):
            writer.add_relation("R", 2, [(1, 2), (1, 2)])
        writer.abort()

    def test_relations_must_arrive_in_name_order(self, tmp_path):
        writer = SnapshotWriter(tmp_path / "order")
        writer.add_relation("S", 1, [(1,)])
        with pytest.raises(SnapshotLayoutError, match="ascending"):
            writer.add_relation("R", 1, [(1,)])
        writer.abort()

    def test_non_int_str_constants_are_rejected(self, tmp_path):
        writer = SnapshotWriter(tmp_path / "const")
        with pytest.raises(SnapshotLayoutError, match="int or str"):
            writer.add_relation("R", 1, [(1.5,)])
        writer.abort()

    def test_mixed_and_all_int_constant_tables_round_trip(self, tmp_path):
        mixed = Database()
        mixed.add("R", "a", 1)
        mixed.add("R", "b", 2)
        ints = Database()
        ints.add("R", 1, 2)
        ints.add("R", 3, 4)
        for tag, db in (("mixed", mixed), ("ints", ints)):
            stored = _stored(db, tmp_path, tag)
            assert set(stored) == set(db)

    def test_costs_and_exogenous_flags_round_trip(self, tmp_path):
        db = Database()
        fact = db.add("R", 1, 2, cost=5)
        db.add("R", 2, 3)
        db.add("H", 1, 3, cost=7)
        db.set_exogenous("H")
        stored = _stored(db, tmp_path, "costs")
        assert stored.relations["H"].exogenous
        assert not stored.relations["R"].exogenous
        assert stored.cost(fact) == 5
        assert stored.cost(DBTuple("R", (2, 3))) == 1
        # Exogenous costs are preserved too (served, never charged).
        assert stored.cost(DBTuple("H", (1, 3))) == 7
        assert stored.has_weighted_costs() == db.has_weighted_costs()


# ---------------------------------------------------------------------------
# Handles
# ---------------------------------------------------------------------------

class TestStoredHandles:
    def test_in_place_mutation_raises(self, tmp_path):
        db, _ = _instance("q_chain", 0)
        stored = _stored(db, tmp_path, "ro")
        for attempt in (
            lambda: stored.add("R", 1, 2),
            lambda: stored.declare("Z", 1),
            lambda: stored.set_cost(next(iter(stored)), 3),
            lambda: stored.set_exogenous("R"),
            lambda: stored.copy(),
        ):
            with pytest.raises(ReadOnlyStorageError):
                attempt()

    def test_minus_materializes_a_mutable_copy(self, tmp_path):
        db = Database()
        db.add("R", 1, 2)
        db.add("R", 2, 3)
        stored = _stored(db, tmp_path, "minus")
        gone = DBTuple("R", (1, 2))
        reduced = stored.minus({gone})
        assert isinstance(reduced, Database)
        assert gone not in reduced
        assert DBTuple("R", (2, 3)) in reduced
        assert gone in stored  # the snapshot itself is untouched

    def test_pickle_is_by_path_and_o1_sized(self, tmp_path):
        small, _ = _instance("q_chain", 0)
        big = Database()
        big.add_all("R", ((i, i + 1) for i in range(20_000)))
        payloads = []
        for tag, db in (("small", small), ("big", big)):
            stored = _stored(db, tmp_path, tag)
            blob = pickle.dumps(stored)
            payloads.append(len(blob))
            reopened = pickle.loads(blob)
            assert reopened.content_digest() == stored.content_digest()
        # 20k tuples vs ~40: the payload must not scale with content.
        assert abs(payloads[0] - payloads[1]) < 64

    def test_equality_and_hash_are_content_keyed(self, tmp_path):
        db, _ = _instance("q_chain", 1)
        a = _stored(db, tmp_path, "eq-a")
        b = _stored(db, tmp_path, "eq-b")
        assert a == b and hash(a) == hash(b)
        other, _ = _instance("q_chain", 2)
        c = _stored(other, tmp_path, "eq-c")
        assert a != c

    def test_to_database_round_trips_content(self, tmp_path):
        db, _ = _instance("q_3chain", 3)
        stored = _stored(db, tmp_path, "roundtrip")
        assert stored.to_database() == db


# ---------------------------------------------------------------------------
# Backend equivalence (the 8-family matrix)
# ---------------------------------------------------------------------------

def _kernel_fingerprint(ws):
    """The kernel at fact level: universe, forced facts, surviving sets."""
    return (
        ws.universe,
        ws.forced,
        sorted(
            sorted(t.sort_key() for t in ws.tuples(s)) for s in ws.sets
        ),
        ws.stats.tuples_final,
        ws.stats.witnesses_final,
    )


class TestBackendEquivalence:
    @pytest.mark.parametrize("name", FAMILIES)
    def test_witness_incidence_is_bit_identical(self, name, tmp_path):
        for seed in range(SEEDS_PER_FAMILY):
            db, query = _instance(name, seed)
            stored = _stored(db, tmp_path, f"wi-{seed}")
            mem = columnar_witness_incidence(db, query)
            out = columnar_witness_incidence(stored, query)
            assert (mem is None) == (out is None), (name, seed)
            if mem is None:
                continue
            assert out[0] == mem[0], (name, seed)
            assert np.array_equal(out[1], mem[1]), (name, seed)

    @pytest.mark.parametrize("name", FAMILIES)
    def test_kernels_are_bit_identical(self, name, tmp_path):
        for seed in range(SEEDS_PER_FAMILY):
            for weighted in (False, True):
                db, query = _instance(name, seed)
                stored = _stored(db, tmp_path, f"k-{seed}-{weighted}")
                clear_witness_cache()
                mem = witness_structure(db, query, weighted=weighted)
                clear_witness_cache()
                out = witness_structure(stored, query, weighted=weighted)
                clear_witness_cache()
                assert _kernel_fingerprint(out) == _kernel_fingerprint(mem), (
                    name,
                    seed,
                    weighted,
                )

    @pytest.mark.parametrize("name", FAMILIES)
    def test_resilience_values_are_identical(self, name, tmp_path):
        for seed in range(SEEDS_PER_FAMILY):
            db, query = _instance(name, seed)
            stored = _stored(db, tmp_path, f"r-{seed}")
            for weighted in (False, True):
                clear_witness_cache()
                try:
                    mem = solve(db, query, weighted=weighted)
                except UnbreakableQueryError:
                    mem = None
                clear_witness_cache()
                try:
                    out = solve(stored, query, weighted=weighted)
                except UnbreakableQueryError:
                    out = None
                clear_witness_cache()
                assert (mem is None) == (out is None), (name, seed, weighted)
                if mem is None:
                    continue
                assert out.value == mem.value, (name, seed, weighted)
                # The certificate from the stored solve must be valid
                # against the *in-memory* instance (same content).
                assert is_contingency_set(db, query, out.contingency_set)
                if weighted:
                    assert db.total_cost(out.contingency_set) == out.value
                else:
                    assert len(out.contingency_set) == out.value


# ---------------------------------------------------------------------------
# RSS ceiling (reduced-scale harness; the full gate is bench E22)
# ---------------------------------------------------------------------------

_RSS_CHILD = """\
import json, os, resource, sys
from repro.resilience.solver import solve
from repro.storage import open_stored_database
from repro.workloads import chain_query, write_chain_snapshot

path = os.environ["E22_SNAPSHOT_PATH"]
tuples = int(os.environ["E22_TUPLES"])
write_chain_snapshot(path, tuples)
result = solve(open_stored_database(path), chain_query(), method="exact")
peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
if sys.platform == "darwin":
    peak //= 1024
print(json.dumps({"value": result.value, "ru_maxrss_kb": int(peak)}))
"""


class TestRSSCeiling:
    def test_reduced_scale_build_and_solve_stays_under_ceiling(self, tmp_path):
        """A fresh interpreter streams, opens, and solves a 100k-tuple
        chain instance under a 512 MB lifetime-RSS ceiling."""
        pytest.importorskip("resource")
        tuples = int(os.environ.get("REPRO_TEST_RSS_TUPLES", "100000"))
        ceiling_mb = int(os.environ.get("REPRO_TEST_RSS_MB", "512"))
        env = dict(os.environ)
        src = str(Path(__file__).resolve().parent.parent / "src")
        existing = env.get("PYTHONPATH")
        env["PYTHONPATH"] = (
            src if not existing else f"{src}{os.pathsep}{existing}"
        )
        env["E22_SNAPSHOT_PATH"] = str(tmp_path / "rss-snapshot")
        env["E22_TUPLES"] = str(tuples)
        proc = subprocess.run(
            [sys.executable, "-c", _RSS_CHILD],
            env=env,
            capture_output=True,
            text=True,
            timeout=600,
        )
        assert proc.returncode == 0, proc.stderr
        report = json.loads(proc.stdout.strip().splitlines()[-1])
        assert report["value"] == 512
        assert report["ru_maxrss_kb"] / 1024.0 <= ceiling_mb, report


# ---------------------------------------------------------------------------
# Zero-copy worker sharing
# ---------------------------------------------------------------------------

class TestWorkerSharing:
    def test_workers_reopen_the_snapshot_by_path(self, tmp_path):
        from repro.parallel import PairTask, build_shards, execute_shards, group_by_database
        from repro.workloads import chain_database, chain_query

        db = chain_database(4_000, hot_pairs=64)
        stored = _stored(db, tmp_path, "pool")
        query = chain_query()
        tasks = [
            PairTask(0, stored, query, method="exact"),
            PairTask(1, db, query, method="exact"),
        ]
        shards = build_shards(group_by_database(tasks), 2)
        results, _telemetry = execute_shards(shards, workers=2)
        assert results[0].value == results[1].value == 64
