"""Tests for the dichotomy classifier (Theorem 37 + Section 8)."""

import pytest

from repro.query import parse_query
from repro.query.zoo import ALL_QUERIES, PAPER_VERDICTS
from repro.structure import Verdict, classify
from repro.structure.isomorphism import are_isomorphic

_VERDICT_MAP = {"P": Verdict.P, "NPC": Verdict.NPC, "OPEN": Verdict.OPEN}


class TestPaperVerdicts:
    """The classifier reproduces every complexity verdict the paper states."""

    @pytest.mark.parametrize("name", sorted(PAPER_VERDICTS))
    def test_verdict_matches_paper(self, name):
        result = classify(ALL_QUERIES[name])
        assert result.verdict == _VERDICT_MAP[PAPER_VERDICTS[name]], (
            f"{name}: classifier says {result.verdict} via {result.rule}, "
            f"paper says {PAPER_VERDICTS[name]}"
        )


class TestRules:
    def test_triangle_via_triad(self):
        assert classify(ALL_QUERIES["q_triangle"]).rule == "triad"

    def test_vc_via_unary_path(self):
        assert classify(ALL_QUERIES["q_vc"]).rule == "unary-path"

    def test_z1_via_binary_path(self):
        assert classify(ALL_QUERIES["q_z1"]).rule == "binary-path"

    def test_chain_rule(self):
        assert classify(ALL_QUERIES["q_chain"]).rule == "chain"

    def test_confluence_rules(self):
        assert classify(ALL_QUERIES["q_ACconf"]).rule == "confluence-no-exogenous-path"
        assert classify(ALL_QUERIES["q_cfp"]).rule == "confluence-exogenous-path"

    def test_permutation_rules(self):
        assert classify(ALL_QUERIES["q_Aperm"]).rule == "unbound-permutation"
        assert classify(ALL_QUERIES["q_ABperm"]).rule == "bound-permutation"

    def test_rep_rule(self):
        assert classify(ALL_QUERIES["q_z3"]).rule == "rep-shared-variable"

    def test_k_chain_rule(self):
        assert classify(ALL_QUERIES["q_3chain"]).rule == "k-chain"
        q4 = parse_query("R(x,y), R(y,z), R(z,w), R(w,v)")
        assert classify(q4).rule == "k-chain"

    def test_section8_catalog_rule(self):
        res = classify(ALL_QUERIES["q_AC3conf"])
        assert res.rule.startswith("section8-catalog")

    def test_minimization_applied_first(self):
        """Example 22: the non-minimal self-join variation is trivially P."""
        res = classify(ALL_QUERIES["q_ex22_sj"])
        assert res.verdict == Verdict.P
        assert len(res.minimized.atoms) == 1

    def test_components_rule(self):
        res = classify(ALL_QUERIES["q_comp"])
        assert res.verdict == Verdict.P
        assert res.rule == "all-components-p"
        assert len(res.component_results) == 2

    def test_disconnected_with_hard_component(self):
        q = parse_query("R(x,y), R(y,z), S(u,v), A(u)")
        res = classify(q)
        assert res.verdict == Verdict.NPC
        assert res.rule == "component-np-complete"

    def test_all_exogenous_is_trivial(self):
        q = parse_query("R^x(x,y), S^x(y,z)")
        assert classify(q).verdict == Verdict.P

    def test_renamed_queries_classified_alike(self):
        """The catalog matches up to variable/relation renaming."""
        renamed = parse_query("P(a), Q(a,b), Q(c,b), Q(c,d), M(d)")
        original = ALL_QUERIES["q_AC3conf"]
        assert are_isomorphic(renamed, original)
        assert classify(renamed).verdict == Verdict.NPC

    def test_column_swapped_confluence(self):
        """Resilience is invariant under transposing a relation."""
        mirrored = parse_query("A(x), R(y,x), R(y,z), C(z)")
        assert classify(mirrored).verdict == Verdict.P


class TestSoundnessSpotChecks:
    def test_every_verdict_carries_rule_and_detail(self):
        for name in PAPER_VERDICTS:
            res = classify(ALL_QUERIES[name])
            assert res.rule
            assert res.detail
