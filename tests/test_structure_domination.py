"""Tests for sj-free and SJ-domination (Definitions 3 and 16)."""

import pytest

from repro.query import parse_query
from repro.query.zoo import (
    q_AS3cc,
    q_brats,
    q_dom_ex17_1,
    q_dom_ex17_2,
    q_rats,
    q_sj1_rats,
    q_tripod,
)
from repro.resilience import resilience_exact
from repro.structure import (
    dominated_relations,
    normalize,
    sj_dominates,
    sjfree_dominates,
)
from repro.workloads import random_database_for_query


class TestSjFreeDomination:
    def test_a_dominates_w_in_tripod(self):
        a = q_tripod.atoms[0]
        w = q_tripod.atoms[3]
        assert sjfree_dominates(a, w)
        assert not sjfree_dominates(w, a)

    def test_requires_proper_subset(self):
        q = parse_query("R(x,y), S(x,y)")
        assert not sjfree_dominates(q.atoms[0], q.atoms[1])

    def test_exogenous_never_dominates(self):
        q = parse_query("A^x(x), W(x,y)")
        assert not sjfree_dominates(q.atoms[0], q.atoms[1])


class TestSJDomination:
    def test_example_17_q1_not_dominated(self):
        """Example 17: A does not dominate R in q1."""
        assert not sj_dominates(q_dom_ex17_1, "A", "R")

    def test_example_17_q2_dominated(self):
        """Example 17: A dominates R in q2."""
        assert sj_dominates(q_dom_ex17_2, "A", "R")

    def test_example_17_s_dominated_in_both(self):
        assert sj_dominates(q_dom_ex17_1, "A", "S")
        assert sj_dominates(q_dom_ex17_2, "A", "S")

    def test_example_11_a_does_not_dominate_r(self):
        """Section 3.2 / 4.3: in q_sj1_rats A must NOT dominate R."""
        assert not sj_dominates(q_sj1_rats, "A", "R")

    def test_rats_single_occurrence_matches_sjfree(self):
        assert sj_dominates(q_rats, "A", "R")
        assert sj_dominates(q_rats, "A", "T")
        assert not sj_dominates(q_rats, "A", "S")

    def test_r_dominates_s_in_as3cc(self):
        """q_AS3cc: S(w,z) always joins with R(w,z) -> R dominates S."""
        assert sj_dominates(q_AS3cc, "R", "S")

    def test_self_domination_excluded(self):
        assert not sj_dominates(q_rats, "A", "A")


class TestNormalize:
    def test_rats_normal_form(self):
        norm = normalize(q_rats)
        flags = norm.relation_flags()
        assert flags["R"] and flags["T"]
        assert not flags["A"] and not flags["S"]

    def test_brats_normal_form(self):
        norm = normalize(q_brats)
        flags = norm.relation_flags()
        assert flags["R"] and flags["S"] and flags["T"]
        assert not flags["A"] and not flags["B"]

    def test_sj1_rats_unchanged(self):
        """Example 11's query is already in normal form: nothing dominates."""
        norm = normalize(q_sj1_rats)
        assert not any(norm.relation_flags().values())

    def test_normalize_reaches_fixpoint(self):
        norm = normalize(q_brats)
        assert dominated_relations(norm) == []


class TestDominationSoundness:
    """Proposition 18: RES(q) = RES(normal form of q), checked empirically."""

    @pytest.mark.parametrize("name_seed", range(8))
    def test_normalization_preserves_resilience_q2(self, name_seed):
        q = q_dom_ex17_2
        norm = normalize(q)
        db = random_database_for_query(q, domain_size=4, density=0.45, seed=name_seed)
        assert (
            resilience_exact(db, q).value == resilience_exact(db, norm).value
        )

    @pytest.mark.parametrize("seed", range(8))
    def test_normalization_preserves_resilience_rats(self, seed):
        norm = normalize(q_rats)
        db = random_database_for_query(q_rats, domain_size=4, density=0.45, seed=seed)
        assert (
            resilience_exact(db, q_rats).value
            == resilience_exact(db, norm).value
        )
