"""Tests for query isomorphism (catalog matching machinery)."""

import pytest

from repro.query import parse_query
from repro.query.zoo import q_AC3cc, q_AC3conf, q_chain, q_conf
from repro.structure.isomorphism import are_isomorphic, find_isomorphism


class TestIsomorphism:
    def test_reflexive(self):
        assert are_isomorphic(q_chain, q_chain)

    def test_variable_renaming(self):
        a = parse_query("R(x,y), R(y,z)")
        b = parse_query("R(u,v), R(v,w)")
        mapping = find_isomorphism(a, b)
        assert mapping is not None
        assert mapping["y"] == "v"

    def test_relation_renaming(self):
        a = parse_query("A(x), R(x,y)")
        b = parse_query("B(u), Q(u,v)")
        assert are_isomorphic(a, b)

    def test_column_swap(self):
        """R and its transpose are the same query up to column swap."""
        a = parse_query("A(x), R(x,y), R(z,y), C(z)")
        b = parse_query("A(x), R(y,x), R(y,z), C(z)")
        assert are_isomorphic(a, b)
        assert not are_isomorphic(a, b, allow_column_swap=False)

    def test_exogenous_flags_must_match(self):
        a = parse_query("S(x,y), R(x,y), R(y,z), R(z,y)")
        b = parse_query("S^x(x,y), R(x,y), R(y,z), R(z,y)")
        assert not are_isomorphic(a, b)

    def test_relation_renaming_with_reversal(self):
        """R,R,S along a chain matches R,S,S: reverse and rename R<->S."""
        a = parse_query("R(x,y), R(y,z), S(z,w)")
        b = parse_query("R(x,y), S(y,z), S(z,w)")
        assert are_isomorphic(a, b)

    def test_occurrence_counts_must_match(self):
        a = parse_query("R(x,y), R(y,z), S(z,w)")
        b = parse_query("R(x,y), S(y,z), R(z,w)")  # R,S,R is palindromic
        assert not are_isomorphic(a, b)

    def test_chain_not_isomorphic_to_confluence(self):
        assert not are_isomorphic(q_chain, q_conf)

    def test_ac3conf_not_isomorphic_to_ac3cc(self):
        """The two Section 8 families must stay distinguishable."""
        assert not are_isomorphic(q_AC3conf, q_AC3cc)

    def test_different_sizes(self):
        assert not are_isomorphic(q_chain, parse_query("R(x,y)"))

    def test_swapping_both_r_atoms_globally(self):
        """The swap applies to ALL occurrences of a relation at once:
        a chain stays a chain under a global transpose, and never
        becomes a confluence."""
        chain_t = parse_query("R(y,x), R(z,y)")  # global transpose of qchain
        assert are_isomorphic(q_chain, chain_t)
        assert not are_isomorphic(q_conf, q_chain)
