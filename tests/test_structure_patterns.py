"""Tests for path/chain/confluence/permutation/REP pattern detection."""

import pytest

from repro.query import parse_query
from repro.query.zoo import (
    q_ABperm,
    q_ACconf,
    q_Aperm,
    q_cfp,
    q_chain,
    q_conf,
    q_perm,
    q_vc,
    q_z1,
    q_z2,
    q_z3,
)
from repro.structure import (
    confluence_has_exogenous_path,
    find_binary_path,
    find_path,
    find_unary_path,
    permutation_is_bound,
    two_atom_pattern,
)


class TestPaths:
    def test_vc_has_unary_path(self):
        pair = find_unary_path(q_vc)
        assert pair is not None
        assert {a.args for a in pair} == {("x",), ("y",)}

    def test_z1_has_binary_path(self):
        """z1 :- R(x,x), S(x,y), R(y,y): R-atoms have disjoint variables."""
        assert find_binary_path(q_z1) is not None

    def test_z2_has_binary_path(self):
        assert find_binary_path(q_z2) is not None

    def test_chain_has_no_path(self):
        assert find_path(q_chain) is None

    def test_connected_r_atoms_no_binary_path(self):
        # Three R-atoms chained through shared variables: one component.
        q = parse_query("R(x,y), R(y,z), R(z,w)")
        assert find_binary_path(q) is None

    def test_transitively_connected_r_atoms(self):
        # R(x,y) and R(z,w) disjoint but bridged by R(y,z): not a path.
        q = parse_query("R(x,y), R(y,z), R(z,w), A(x)")
        assert find_binary_path(q) is None


class TestTwoAtomPatterns:
    def test_chain_pattern(self):
        assert two_atom_pattern(q_chain) == "chain"

    def test_confluence_pattern(self):
        assert two_atom_pattern(q_conf) == "confluence"

    def test_mirror_confluence(self):
        """R(x,y), R(x,z) joins in the first attribute: also a confluence."""
        q = parse_query("A(y), R(x,y), R(x,z), C(z)")
        assert two_atom_pattern(q) == "confluence"

    def test_permutation_pattern(self):
        assert two_atom_pattern(q_perm) == "permutation"

    def test_rep_pattern(self):
        assert two_atom_pattern(q_z3) == "rep"

    def test_rep_disjoint_is_path(self):
        assert two_atom_pattern(q_z1) == "path"

    def test_not_two_atoms_returns_none(self):
        q = parse_query("R(x,y), R(y,z), R(z,w)")
        assert two_atom_pattern(q) is None


class TestConfluenceCriterion:
    def test_acconf_no_exogenous_path(self):
        assert not confluence_has_exogenous_path(q_ACconf)

    def test_cfp_has_exogenous_path(self):
        """Section 7.2: cfp :- R(x,y), H^x(x,z), R(z,y) is like q_vc."""
        assert confluence_has_exogenous_path(q_cfp)

    def test_multi_hop_exogenous_path(self):
        q = parse_query("R(x,y), H^x(x,w), G^x(w,z), R(z,y)")
        assert confluence_has_exogenous_path(q)

    def test_exogenous_path_through_y_does_not_count(self):
        q = parse_query("A(x), R(x,y), H^x(x,y), R(z,y), C(z)")
        assert not confluence_has_exogenous_path(q)


class TestPermutationCriterion:
    def test_perm_unbound(self):
        assert not permutation_is_bound(q_perm)

    def test_aperm_unbound(self):
        assert not permutation_is_bound(q_Aperm)

    def test_abperm_bound(self):
        assert permutation_is_bound(q_ABperm)

    def test_binary_side_atoms_bound(self):
        q = parse_query("S(u,x), R(x,y), R(y,x), T(y,v)")
        assert permutation_is_bound(q)

    def test_exogenous_side_atoms_do_not_bind(self):
        q = parse_query("A^x(x), R(x,y), R(y,x), B^x(y)")
        assert not permutation_is_bound(q)
