"""Tests for triad detection (Definition 5) and pseudo-linearity (Thm 25)."""

import pytest

from repro.query import parse_query
from repro.query.zoo import (
    ALL_QUERIES,
    q_chain,
    q_lin,
    q_rats,
    q_sj1_brats,
    q_sj1_rats,
    q_triangle,
    q_triangle_sj1,
    q_tripod,
)
from repro.structure import find_triad, has_triad, normalize
from repro.structure.linearity import (
    is_linear,
    is_pseudo_linear,
    no_triad_implies_pseudo_linear,
)
from repro.structure.triads import all_triads


class TestTriads:
    def test_triangle_has_triad(self):
        """Figure 1: {R, S, T} is a triad of q_triangle."""
        assert find_triad(q_triangle) == (0, 1, 2)

    def test_tripod_has_triad_after_normalization(self):
        """Figure 1: {A, B, C} is a triad of q_tripod (W dominated)."""
        norm = normalize(q_tripod)
        triad = find_triad(norm)
        assert triad is not None
        rels = {norm.atoms[i].relation for i in triad}
        assert rels == {"A", "B", "C"}

    def test_rats_has_no_triad_after_normalization(self):
        """Figure 1 caption: domination 'disarms' the apparent triad."""
        norm = normalize(q_rats)
        assert not has_triad(norm)

    def test_rats_without_normalization_has_triad(self):
        """Before normalization R, T, S look like a triad — the whole
        point of running domination first."""
        assert has_triad(q_rats)

    def test_sj1_rats_triad_survives(self):
        """Section 5.1: the three R-atoms of q_sj1_rats form a triad."""
        norm = normalize(q_sj1_rats)
        triad = find_triad(norm)
        assert triad is not None
        rels = [norm.atoms[i].relation for i in triad]
        assert rels == ["R", "R", "R"]

    def test_sj1_brats_triad_survives(self):
        norm = normalize(q_sj1_brats)
        assert has_triad(norm)

    def test_triangle_sj_variation_has_triad(self):
        assert has_triad(q_triangle_sj1)

    def test_chain_has_no_triad(self):
        assert not has_triad(q_chain)

    def test_exogenous_atoms_cannot_be_triad_members(self):
        q = parse_query("R^x(x,y), S(y,z), T(z,x)")
        assert not has_triad(q)

    def test_paths_may_pass_through_exogenous_atoms(self):
        # A, B, C connected pairwise through the exogenous W.
        q = parse_query("A(x), B(y), C(z), W^x(x,y,z)")
        assert has_triad(q)

    def test_all_triads_lists_every_triple(self):
        assert all_triads(q_triangle) == [(0, 1, 2)]


class TestLinearity:
    def test_qlin_is_linear(self):
        assert is_linear(q_lin)

    def test_triangle_not_linear(self):
        assert not is_linear(q_triangle)

    def test_chain_is_linear(self):
        assert is_linear(q_chain)

    def test_rats_normal_form_pseudo_linear(self):
        assert is_pseudo_linear(normalize(q_rats))

    def test_theorem_25_on_zoo(self):
        """No triad => endogenous atoms linearly connected, across the zoo."""
        for name, q in ALL_QUERIES.items():
            norm = normalize(q)
            assert no_triad_implies_pseudo_linear(norm), name
