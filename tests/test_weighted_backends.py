"""Differential suite for the weighted (min-cost) objective.

One randomized matrix of 200 skewed-cost instances — PTIME and NP-hard
zoo queries alike — cross-checked every way the engine can disagree
with itself:

* **kernels** — the frozenset reference and the bitset matrix kernel
  (``REPRO_KERNEL_BACKEND``) must produce identical weighted results
  (value, contingency set, method) in every mode;
* **flow backends** — networkx and scipy csgraph min-cut
  (``REPRO_FLOW_BACKEND``) must produce equal weighted *values* with
  valid certificates paying exactly that value (minimum cuts are not
  unique, so the sets may legitimately differ — the same caveat as the
  unweighted tier, see ``docs/api.md``);
* **solver tiers** — branch-and-bound and the ILP oracle must agree
  exactly, and the LP/greedy approx bounds must enclose the optimum;
* **execution plans** — ``solve_batch`` over the matrix must return
  identical results serial and with ``workers=2``, cold-cache and
  warm-cache (and the warm run must actually hit the cache);
* **greedy determinism** — the weighted greedy tie-break (best
  cost-ratio, then smallest id) is pinned by regression so identical
  picks come back run after run and worker count after worker count.
"""

import os
import random
from contextlib import contextmanager

import pytest

from repro.core.analyzer import solve_batch
from repro.query.zoo import ALL_QUERIES
from repro.resilience.approx import greedy_hitting_set
from repro.resilience.exact import (
    is_contingency_set,
    resilience_branch_and_bound,
    resilience_ilp,
)
from repro.resilience.solver import dispatch_plan, solve
from repro.resilience.types import UnbreakableQueryError
from repro.witness import clear_witness_cache
from repro.workloads import assign_skewed_costs, random_database_for_query

# 8 queries x 25 seeds = the 200-instance matrix.  The PTIME rows cover
# both weighted-sound specials and (via q_lin) the linear min-cost-flow
# path; the NP-hard rows exercise the cost-aware kernel and the
# weighted branch-and-bound.
PTIME_QUERIES = ("q_perm", "q_Aperm", "q_lin")
HARD_QUERIES = ("q_chain", "q_3chain", "q_sj1_rats", "q_conf", "q_triangle_sj1")
SEEDS_PER_QUERY = 25


@contextmanager
def _env(**overrides):
    old = {key: os.environ.get(key) for key in overrides}
    try:
        for key, value in overrides.items():
            if value is None:
                os.environ.pop(key, None)
            else:
                os.environ[key] = value
        yield
    finally:
        for key, value in old.items():
            if value is None:
                os.environ.pop(key, None)
            else:
                os.environ[key] = value


def _matrix_queries():
    names = [n for n in PTIME_QUERIES if n in ALL_QUERIES] + list(HARD_QUERIES)
    assert len(names) * SEEDS_PER_QUERY >= 200
    return names


def _instance(name, seed):
    """One deterministic skewed-cost instance of the matrix."""
    query = ALL_QUERIES[name]
    rng = random.Random((hash(name) & 0xFFFF) * 1000 + seed)
    db = random_database_for_query(
        query,
        domain_size=rng.randint(4, 5),
        density=rng.uniform(0.3, 0.5),
        rng=rng,
    )
    assign_skewed_costs(db, rng=rng, max_cost=9)
    return db, query


def _weighted_exact(db, query):
    try:
        return solve(db, query, weighted=True)
    except UnbreakableQueryError:
        return None


class TestKernelBackendsAgreeWeighted:
    @pytest.mark.parametrize("name", _matrix_queries())
    def test_reference_and_bitset_kernels_identical(self, name):
        for seed in range(SEEDS_PER_QUERY):
            db, query = _instance(name, seed)
            answers = {}
            for backend in ("reference", "bitset"):
                with _env(REPRO_KERNEL_BACKEND=backend):
                    clear_witness_cache()
                    res = _weighted_exact(db, query)
                answers[backend] = (
                    res
                    if res is None
                    else (res.value, res.contingency_set, res.method)
                )
            clear_witness_cache()
            assert answers["reference"] == answers["bitset"], (name, seed)


class TestFlowBackendsAgreeWeighted:
    def test_networkx_and_csgraph_values_equal(self):
        """Every flow-routed instance of the matrix: equal min-cost
        values, both certificates valid and paying exactly the value."""
        flow_cases = 0
        for name in _matrix_queries():
            query = ALL_QUERIES[name]
            if dispatch_plan(query, weighted=True).kind == "exact":
                continue
            for seed in range(SEEDS_PER_QUERY):
                db, query = _instance(name, seed)
                results = {}
                for backend in ("networkx", "csgraph"):
                    with _env(REPRO_FLOW_BACKEND=backend):
                        clear_witness_cache()
                        results[backend] = _weighted_exact(db, query)
                a, b = results["networkx"], results["csgraph"]
                if a is None or b is None:
                    assert a is None and b is None, (name, seed)
                    continue
                assert a.value == b.value, (name, seed)
                for res in (a, b):
                    assert db.total_cost(res.contingency_set) == res.value
                    assert is_contingency_set(db, query, res.contingency_set)
                flow_cases += 1
        assert flow_cases > 0


class TestSolverTiersAgreeWeighted:
    @pytest.mark.parametrize("name", _matrix_queries())
    def test_bnb_ilp_and_lp_bounds_agree(self, name):
        clear_witness_cache()
        for seed in range(SEEDS_PER_QUERY):
            db, query = _instance(name, seed)
            try:
                bnb = resilience_branch_and_bound(db, query, weighted=True)
            except UnbreakableQueryError:
                with pytest.raises(UnbreakableQueryError):
                    resilience_ilp(db, query, weighted=True)
                continue
            ilp = resilience_ilp(db, query, weighted=True)
            assert bnb.value == ilp.value, (name, seed)
            auto = _weighted_exact(db, query)
            assert auto is not None and auto.value == bnb.value, (name, seed)
            bounds = solve(db, query, mode="approx", weighted=True)
            assert bounds.lower_bound <= bnb.value <= bounds.upper_bound
            assert (
                db.total_cost(bounds.contingency_set) == bounds.upper_bound
            )


class TestExecutionPlansAgreeWeighted:
    def _pairs(self):
        return [
            _instance(name, seed)
            for name in _matrix_queries()
            for seed in range(3)
        ]

    @staticmethod
    def _key(results):
        return [(r.value, r.contingency_set, r.method) for r in results]

    def test_serial_and_two_workers_identical(self):
        pairs = self._pairs()
        clear_witness_cache()
        serial = solve_batch(pairs, weighted=True, workers=1)
        clear_witness_cache()
        pooled = solve_batch(pairs, weighted=True, workers=2)
        assert self._key(serial.results) == self._key(pooled.results)

    def test_cold_and_warm_cache_identical(self, tmp_path):
        pairs = self._pairs()
        cache_dir = tmp_path / "cache"
        clear_witness_cache()
        cold = solve_batch(pairs, weighted=True, cache_dir=cache_dir)
        assert cold.stats.cache_hits == 0
        clear_witness_cache()
        warm = solve_batch(pairs, weighted=True, cache_dir=cache_dir)
        assert warm.stats.cache_hits == len(pairs)
        assert self._key(cold.results) == self._key(warm.results)

    def test_weighted_and_unweighted_cache_keys_disjoint(self, tmp_path):
        """A cached unweighted answer must never serve a weighted
        request over the same database (and vice versa)."""
        pairs = [_instance("q_chain", 0)]
        cache_dir = tmp_path / "cache"
        clear_witness_cache()
        unweighted = solve_batch(pairs, cache_dir=cache_dir)
        clear_witness_cache()
        weighted = solve_batch(pairs, weighted=True, cache_dir=cache_dir)
        assert weighted.stats.cache_hits == 0
        db, _ = pairs[0]
        assert weighted.results[0].value == db.total_cost(
            weighted.results[0].contingency_set
        )
        assert unweighted.results[0].value == len(
            unweighted.results[0].contingency_set
        )


class TestWeightedGreedyTieBreak:
    """Regression: the weighted greedy pick is (best cost-ratio,
    smallest id) — integer cross-multiplication, no float ratios — so
    identical picks come back across runs and worker counts."""

    def test_equal_ratio_tie_picks_smallest_id(self):
        # Tuples 2 and 7 both hit two sets at cost 4 (ratio 1/2 each);
        # the tie must go to id 2.
        sets = [
            frozenset({2, 7}),
            frozenset({2, 9}),
            frozenset({7, 9}),
        ]
        costs = {2: 4, 7: 4, 9: 9}
        chosen = greedy_hitting_set(sets, costs=costs)
        assert 2 in chosen
        assert chosen == greedy_hitting_set(sets, costs=costs)

    def test_cheaper_ratio_beats_smaller_id(self):
        # Tuple 9 covers one set at cost 1 (ratio 1) vs tuple 1 at
        # cost 5 (ratio 5): the ratio decides, not the id.
        sets = [frozenset({1, 9})]
        assert greedy_hitting_set(sets, costs={1: 5, 9: 1}) == {9}

    def test_picks_stable_across_repeated_runs(self):
        rng = random.Random(42)
        for _ in range(50):
            n = rng.randint(2, 20)
            ids = rng.sample(range(60), n)
            sets = [
                frozenset(rng.sample(ids, rng.randint(1, min(4, n))))
                for _ in range(rng.randint(1, 30))
            ]
            costs = {t: rng.randint(1, 9) for t in ids}
            first = greedy_hitting_set(sets, costs=costs)
            assert all(
                greedy_hitting_set(sets, costs=costs) == first
                for _ in range(3)
            )

    def test_picks_stable_across_worker_counts(self):
        pairs = [_instance("q_chain", s) for s in range(4)]
        outcomes = []
        for workers in (1, 2):
            clear_witness_cache()
            batch = solve_batch(pairs, mode="approx", weighted=True,
                                workers=workers)
            outcomes.append(
                [
                    (r.lower_bound, r.upper_bound, r.contingency_set, r.method)
                    for r in batch.results
                ]
            )
        assert outcomes[0] == outcomes[1]
