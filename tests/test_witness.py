"""Tests for the shared witness-structure engine (repro.witness)."""

import pytest

from repro.db import Database, DBTuple
from repro.query import parse_query
from repro.query.evaluation import DatabaseIndex
from repro.query.zoo import ALL_QUERIES, q_chain
from repro.resilience import (
    UnbreakableQueryError,
    resilience_branch_and_bound,
    resilience_exact,
    resilience_ilp,
    is_contingency_set,
    solve,
)
from repro.resilience.exact import _greedy_hitting_set
from repro.witness import (
    WitnessStructure,
    clear_witness_cache,
    witness_cache_info,
    witness_structure,
)
from repro.workloads import random_database_for_query


def _cycle_db(offset=0):
    """A directed 3-cycle: the irreducible core for q_chain (rho = 2)."""
    db = Database()
    a, b, c = offset + 1, offset + 2, offset + 3
    db.add_all("R", [(a, b), (b, c), (c, a)])
    return db


class TestBuild:
    def test_chain_example_reductions(self, chain_db):
        """Section 2 example: fully solved by preprocessing alone."""
        ws = WitnessStructure.build(chain_db, q_chain)
        assert ws.satisfied
        assert ws.stats.witnesses_raw == 3
        # {t3} eliminates its superset {t2, t3}
        assert ws.stats.witnesses_minimal == 2
        # unit forcing + domination leave nothing for the solvers
        assert not ws.sets and not ws.components
        assert ws.forced == frozenset(
            {DBTuple("R", (1, 2)), DBTuple("R", (3, 3))}
        )

    def test_universe_is_sorted(self, chain_db):
        ws = WitnessStructure.build(chain_db, q_chain)
        assert list(ws.universe) == sorted(ws.universe)
        assert all(ws.tuple_index[t] == i for i, t in enumerate(ws.universe))

    def test_unsatisfied(self):
        db = Database()
        db.add("R", 1, 2)
        db.add("R", 3, 4)
        ws = WitnessStructure.build(db, q_chain)
        assert not ws.satisfied
        assert not ws.sets

    def test_unbreakable_raises(self):
        q = parse_query("R^x(x,y)")
        db = Database()
        db.declare("R", 2, exogenous=True)
        db.add("R", 1, 2)
        with pytest.raises(UnbreakableQueryError):
            WitnessStructure.build(db, q)

    def test_reduce_false_keeps_raw_sets(self):
        ws = WitnessStructure.build(_cycle_db(), q_chain, reduce=False)
        assert ws.sets == ws.raw_sets
        assert not ws.forced_ids
        assert ws.stats.dominated_tuples == 0

    def test_irreducible_core_untouched(self):
        """The 3-cycle has no units, no dominated tuples, no supersets."""
        ws = WitnessStructure.build(_cycle_db(), q_chain)
        assert len(ws.sets) == 3
        assert not ws.forced_ids
        assert ws.stats.dominated_tuples == 0
        assert len(ws.components) == 1

    def test_bitsets_match_sets(self):
        ws = WitnessStructure.build(_cycle_db(), q_chain)
        for t, mask in ws.tuple_bitsets.items():
            rows = {r for r in range(len(ws.sets)) if mask >> r & 1}
            assert rows == {r for r, s in enumerate(ws.sets) if t in s}

    def test_incidence_matrix(self):
        ws = WitnessStructure.build(_cycle_db(), q_chain)
        A = ws.incidence_matrix()
        assert A.shape == (len(ws.sets), len(ws.universe))
        dense = A.toarray()
        for r, s in enumerate(ws.sets):
            assert {c for c in range(A.shape[1]) if dense[r, c]} == set(s)

    def test_shared_database_index(self, chain_db):
        index = DatabaseIndex(chain_db)
        ws = WitnessStructure.build(chain_db, q_chain, index=index)
        assert ws.stats.witnesses_raw == 3


class TestComponents:
    def test_two_cycles_decompose_and_sum(self):
        db = Database()
        for offset in (0, 10):
            a, b, c = offset + 1, offset + 2, offset + 3
            db.add_all("R", [(a, b), (b, c), (c, a)])
        ws = WitnessStructure.build(db, q_chain)
        assert len(ws.components) == 2
        # Components partition the reduced sets and active tuples.
        assert sum(len(c.sets) for c in ws.components) == len(ws.sets)
        ids = [t for c in ws.components for t in c.tuple_ids]
        assert sorted(ids) == sorted(ws.tuple_bitsets)

        # rho = 2 per cycle; per-component solving must sum to 4 and
        # agree with the unreduced solver.
        res = resilience_branch_and_bound(db, q_chain, structure=ws)
        assert res.value == 4
        unreduced = WitnessStructure.build(db, q_chain, reduce=False)
        assert resilience_branch_and_bound(db, q_chain, structure=unreduced).value == 4
        assert is_contingency_set(db, q_chain, set(res.contingency_set))

    def test_component_incidence_is_local(self):
        db = Database()
        for offset in (0, 10):
            a, b, c = offset + 1, offset + 2, offset + 3
            db.add_all("R", [(a, b), (b, c), (c, a)])
        ws = WitnessStructure.build(db, q_chain)
        for comp in ws.components:
            A = comp.incidence_matrix()
            assert A.shape == (len(comp.sets), len(comp.tuple_ids))
            assert A.sum() == sum(len(s) for s in comp.sets)


QUERY_MIX = (
    "q_chain",
    "q_conf",
    "q_perm",
    "q_sj1_rats",
    "q_z3",
    "q_a_chain",
    "q_vc",
)


class TestReductionsPreserveOptimum:
    @pytest.mark.parametrize("name", QUERY_MIX)
    def test_reduced_equals_unreduced_on_random_workloads(self, name):
        query = ALL_QUERIES[name]
        for seed in range(6):
            db = random_database_for_query(
                query, domain_size=4, density=0.45, seed=seed
            )
            reduced = WitnessStructure.build(db, query)
            unreduced = WitnessStructure.build(db, query, reduce=False)
            baseline = resilience_branch_and_bound(db, query, structure=unreduced)
            bnb = resilience_branch_and_bound(db, query, structure=reduced)
            ilp = resilience_ilp(db, query, structure=reduced)
            assert bnb.value == baseline.value == ilp.value, (name, seed)
            if baseline.value:
                assert is_contingency_set(db, query, set(bnb.contingency_set))
                assert is_contingency_set(db, query, set(ilp.contingency_set))

    def test_forced_tuples_are_in_some_optimum(self, chain_db):
        ws = witness_structure(chain_db, q_chain)
        res = resilience_exact(chain_db, q_chain, structure=ws)
        assert ws.forced <= res.contingency_set


class TestGreedyDeterminism:
    def test_tie_break_uses_sort_key(self):
        # Among equally-covering tuples the *smallest* under the
        # canonical DBTuple order wins (the old repr-based rule took the
        # largest repr, picking R(2,3) here).
        first = DBTuple("R", (10, 1))
        second = DBTuple("R", (2, 3))
        assert first < second
        chosen = _greedy_hitting_set([frozenset({first, second})])
        assert chosen == {first}

    def test_result_independent_of_input_order(self):
        ws = WitnessStructure.build(_cycle_db(), q_chain)
        forward = _greedy_hitting_set(list(ws.sets))
        backward = _greedy_hitting_set(list(reversed(ws.sets)))
        assert forward == backward

    def test_works_on_integer_ids(self):
        sets = [frozenset({0, 1}), frozenset({1, 2}), frozenset({2, 0})]
        assert _greedy_hitting_set(sets) == {0, 1}


class TestCache:
    def test_hit_on_identical_contents(self, chain_db):
        clear_witness_cache()
        first = witness_structure(chain_db, q_chain)
        again = witness_structure(chain_db, q_chain)
        assert first is again
        hits, misses, size = witness_cache_info()
        assert (hits, misses, size) == (1, 1, 1)

    def test_miss_after_mutation(self, chain_db):
        clear_witness_cache()
        first = witness_structure(chain_db, q_chain)
        chain_db.add("R", 7, 8)
        second = witness_structure(chain_db, q_chain)
        assert first is not second

    def test_miss_after_flag_change(self, example_11_db):
        from repro.query.zoo import q_sj1_rats

        clear_witness_cache()
        before = resilience_exact(example_11_db, q_sj1_rats)
        example_11_db.set_exogenous("R")
        after = resilience_exact(example_11_db, q_sj1_rats)
        assert (before.value, after.value) == (1, 2)


class TestSolverIntegration:
    def test_solve_accepts_prebuilt_structure(self, chain_db):
        ws = witness_structure(chain_db, q_chain)
        res = solve(chain_db, q_chain, structure=ws)
        assert res.value == 2

    def test_exact_backend_choice_validated(self, chain_db):
        with pytest.raises(ValueError):
            resilience_exact(chain_db, q_chain, prefer="quantum")
