"""Tests for workload generators."""

import pytest

from repro.workloads import (
    CNFFormula,
    Graph,
    exhaustive_assignments,
    random_2cnf,
    random_3cnf,
    random_database_for_query,
    random_graph,
)
from repro.query.zoo import q_TS3conf, q_chain, q_lin


class TestFormulas:
    def test_clause_validation(self):
        with pytest.raises(ValueError):
            CNFFormula(2, ((0,),))
        with pytest.raises(ValueError):
            CNFFormula(2, ((3,),))

    def test_satisfied_count(self):
        f = CNFFormula(2, ((1, 2), (-1,)))
        assert f.satisfied_count({1: False, 2: True}) == 2
        assert f.satisfied_count({1: True, 2: False}) == 1

    def test_is_satisfiable(self):
        sat = CNFFormula(1, ((1,),))
        unsat = CNFFormula(1, ((1,), (-1,)))
        assert sat.is_satisfiable()
        assert not unsat.is_satisfiable()

    def test_max_satisfiable(self):
        f = CNFFormula(1, ((1,), (-1,)))
        assert f.max_satisfiable() == 1

    def test_exhaustive_assignments_count(self):
        assert len(list(exhaustive_assignments(3))) == 8

    def test_random_3cnf_shape(self):
        f = random_3cnf(5, 7, seed=0)
        assert f.num_vars == 5 and f.num_clauses == 7
        for clause in f.clauses:
            assert len({abs(l) for l in clause}) == 3

    def test_random_3cnf_deterministic(self):
        assert random_3cnf(4, 3, seed=9) == random_3cnf(4, 3, seed=9)

    def test_random_2cnf_shape(self):
        f = random_2cnf(4, 6, seed=1)
        assert all(len(c) in (1, 2) for c in f.clauses)


class TestGraphs:
    def test_make_normalizes_edges(self):
        g = Graph.make([1, 2], [(2, 1)])
        assert (1, 2) in g.edges

    def test_vertex_cover_exhaustive(self):
        g = Graph.make(range(3), [(0, 1), (1, 2)])
        assert g.vertex_cover_number() == 1
        assert g.is_vertex_cover({1})

    def test_triangle_needs_two(self):
        g = Graph.make(range(3), [(0, 1), (1, 2), (0, 2)])
        assert g.vertex_cover_number() == 2

    def test_random_graph_deterministic(self):
        assert random_graph(6, 0.5, seed=3).edges == random_graph(6, 0.5, seed=3).edges

    def test_bad_edge_rejected(self):
        with pytest.raises(ValueError):
            Graph(frozenset({1}), frozenset({(1, 2)}))


class TestRandomDatabases:
    def test_respects_vocabulary(self):
        db = random_database_for_query(q_chain, domain_size=4, seed=0)
        assert set(db.relations) == {"R"}

    def test_respects_exogenous_flags(self):
        db = random_database_for_query(q_TS3conf, domain_size=4, seed=0)
        assert db.relations["T"].exogenous
        assert db.relations["S"].exogenous
        assert not db.relations["R"].exogenous

    def test_ternary_relations_filled(self):
        db = random_database_for_query(q_lin, domain_size=4, density=0.5, seed=0)
        assert db.relations["R"].arity == 3

    def test_deterministic(self):
        a = random_database_for_query(q_chain, domain_size=5, seed=42)
        b = random_database_for_query(q_chain, domain_size=5, seed=42)
        assert a == b

    def test_density_override(self):
        db = random_database_for_query(
            q_chain, domain_size=6, density=0.0, densities={"R": 1.0}, seed=0
        )
        assert len(db.relations["R"]) == 36
